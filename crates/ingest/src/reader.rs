//! Streaming manifest reader: lowers JSON text straight into the crate's
//! borrowed [`RawManifest`] without materialising a `Value` tree.
//!
//! This is why `import_str` fits its bench budget (importing a manifest
//! must cost at most 2% of planning the same graph): for a zoo-sized
//! manifest, just allocating and dropping the intermediate tree costs more
//! than the entire budget. Here every unescaped string borrows from the
//! input and numbers parse in place, in a single pass over the text.
//!
//! A single pass must still honour the error precedence the `Value`
//! walker in `lib.rs` establishes (both frontends must agree on *which*
//! manifests are accepted, even though the wording of structural messages
//! may differ):
//!
//! 1. JSON malformation — including trailing junk, exactly like
//!    `serde_json::from_str` — outranks everything. These abort the scan
//!    immediately as [`IngestError::Json`].
//! 2. A `schema_version` mismatch outranks every node-level objection
//!    (`check_version`'s short-circuit: later versions may carry
//!    constructs this build cannot parse).
//! 3. Only then do mistyped fields surface as [`IngestError::Schema`].
//!
//! Rather than a separate version-skimming pre-pass, schema objections
//! found mid-scan are *deferred* ([`Scan::defer`] keeps the first) while
//! the scan keeps consuming, and only reported once the whole document —
//! and therefore the version gate — has been seen.
//!
//! The grammar accepted is byte-for-byte the one the vendored
//! `serde_json` parser accepts (same lenient number scan, same escape
//! set, same surrogate handling), with one deliberate exception: nesting
//! deeper than [`MAX_DEPTH`] levels is refused up front instead of
//! recursing unboundedly — manifests are a few levels deep, and this
//! reader handles untrusted input.

use std::borrow::Cow;

use crate::{check_version, shape_from_parts, AttrVal, Attrs, IngestError, RawManifest, RawNode};
use powerlens_dnn::TensorShape;

/// Nesting levels a manifest may use. Real manifests use about six.
const MAX_DEPTH: usize = 128;

fn schema(msg: impl Into<String>) -> IngestError {
    IngestError::Schema(msg.into())
}

/// Reads manifest text into the raw form `lower` consumes.
pub(crate) fn read_manifest(text: &str) -> Result<RawManifest<'_>, IngestError> {
    let mut s = Scan::new(text);
    s.skip_ws();
    if s.peek() != Some(b'{') {
        // Still a potentially valid JSON document; JSON errors outrank the
        // "must be an object" objection, so tokenize it fully first.
        let kind = s.skip_value(0)?;
        s.finish()?;
        return Err(schema(format!("manifest must be an object, got {kind}")));
    }
    s.pos += 1;

    // The first occurrence wins on duplicate keys, matching `Value` lookup.
    let mut version: Option<Result<f64, &'static str>> = None;
    let mut name: Option<Cow<'_, str>> = None;
    let mut input: Option<TensorShape> = None;
    let mut nodes: Option<Vec<RawNode<'_>>> = None;
    let mut skip_edges: Vec<(usize, usize)> = Vec::new();
    let mut edges_seen = false;

    s.in_object(|s| {
        let key = s.parse_string()?;
        s.skip_ws();
        s.expect(b':')?;
        s.skip_ws();
        match key.as_ref() {
            "schema_version" if version.is_none() => {
                version = Some(match s.peek() {
                    Some(b'-' | b'0'..=b'9') => Ok(s.parse_number()?),
                    _ => Err(s.skip_value(0)?),
                });
            }
            "name" if name.is_none() => {
                name = s.parse_typed_string(|| "manifest.name".into())?;
            }
            "input" if input.is_none() => {
                input = s.parse_shape(&|| "manifest.input".into())?;
            }
            "nodes" if nodes.is_none() => {
                nodes = s.parse_nodes()?;
            }
            "skip_edges" if !edges_seen => {
                edges_seen = true;
                skip_edges = s.parse_skip_edges()?;
            }
            _ => {
                s.skip_value(0)?;
            }
        }
        Ok(())
    })?;
    s.finish()?;

    // The whole document is well-formed JSON. Gate on the version before
    // reporting any deferred field objection.
    match version {
        None => return Err(schema("manifest is missing field `schema_version`")),
        Some(Err(kind)) => {
            return Err(schema(format!(
                "manifest.schema_version must be a number, got {kind}"
            )))
        }
        Some(Ok(n)) => check_version(n)?,
    }
    if let Some(e) = s.deferred.take() {
        return Err(e);
    }
    let name = name.ok_or_else(|| schema("manifest is missing field `name`"))?;
    let input = input.ok_or_else(|| schema("manifest is missing field `input`"))?;
    let nodes = nodes.ok_or_else(|| schema("manifest is missing field `nodes`"))?;
    Ok(RawManifest {
        name,
        input,
        nodes,
        skip_edges,
    })
}

struct Scan<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    /// First schema objection found mid-scan; reported only after the
    /// whole document parses and the version gate passes.
    deferred: Option<IngestError>,
}

impl<'a> Scan<'a> {
    fn new(text: &'a str) -> Self {
        Scan {
            text,
            bytes: text.as_bytes(),
            pos: 0,
            deferred: None,
        }
    }

    fn err(&self, msg: &str) -> IngestError {
        IngestError::Json(format!("{msg} at byte {}", self.pos))
    }

    fn defer(&mut self, e: IngestError) {
        self.deferred.get_or_insert(e);
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.peek() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), IngestError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    /// Checks nothing follows the document, like `serde_json::from_str`.
    fn finish(&mut self) -> Result<(), IngestError> {
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(())
    }

    /// Runs `each` once per key/value entry of the object whose `{` was
    /// just consumed. `each` must consume the key, the `:` and the value.
    fn in_object(
        &mut self,
        mut each: impl FnMut(&mut Self) -> Result<(), IngestError>,
    ) -> Result<(), IngestError> {
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            each(self)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    /// Runs `each` once per element of the array whose `[` was just
    /// consumed, passing the element index.
    fn in_array(
        &mut self,
        mut each: impl FnMut(&mut Self, usize) -> Result<(), IngestError>,
    ) -> Result<(), IngestError> {
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        let mut i = 0;
        loop {
            self.skip_ws();
            each(self, i)?;
            i += 1;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    /// Validates and consumes one JSON value of any shape, returning its
    /// kind (the same nouns `Value::kind` uses, for "got {kind}" messages).
    fn skip_value(&mut self, depth: usize) -> Result<&'static str, IngestError> {
        if depth >= MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok("null")
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok("bool")
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok("bool")
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => {
                self.parse_string()?;
                Ok("string")
            }
            Some(b'-' | b'0'..=b'9') => {
                self.parse_number()?;
                Ok("number")
            }
            Some(b'[') => {
                self.pos += 1;
                self.in_array(|s, _| s.skip_value(depth + 1).map(|_| ()))?;
                Ok("array")
            }
            Some(b'{') => {
                self.pos += 1;
                self.in_object(|s| {
                    s.parse_string()?;
                    s.skip_ws();
                    s.expect(b':')?;
                    s.skip_value(depth + 1).map(|_| ())
                })?;
                Ok("object")
            }
            Some(other) => Err(self.err(&format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Parses a number with the vendored parser's grammar: an exact-i64
    /// integer fast path, then a lenient scan handed to `str::parse`.
    fn parse_number(&mut self) -> Result<f64, IngestError> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        let mut int: i64 = 0;
        let int_start = self.pos;
        while let Some(&b @ b'0'..=b'9') = self.bytes.get(self.pos) {
            if self.pos - int_start >= 18 {
                break;
            }
            int = int * 10 + i64::from(b - b'0');
            self.pos += 1;
        }
        if self.pos > int_start
            && !matches!(
                self.peek(),
                Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            )
        {
            return Ok(if neg { -(int as f64) } else { int as f64 });
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = &self.text[start..self.pos];
        text.parse::<f64>()
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    /// Parses a string, borrowing from the input when it has no escapes
    /// (every string a well-behaved exporter writes) and unescaping into
    /// an owned buffer otherwise.
    fn parse_string(&mut self) -> Result<Cow<'a, str>, IngestError> {
        self.expect(b'"')?;
        let start = self.pos;
        // Fast scan to the first escape or the closing quote. Both are
        // ASCII bytes, which never appear inside a multi-byte UTF-8
        // sequence, so a byte scan over `&str` content is exact.
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = &self.text[start..self.pos];
                    self.pos += 1;
                    return Ok(Cow::Borrowed(s));
                }
                b'\\' => {
                    let mut out = String::from(&self.text[start..self.pos]);
                    self.unescape_rest(&mut out)?;
                    return Ok(Cow::Owned(out));
                }
                _ => self.pos += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    /// Slow path: the cursor sits on a `\`; finish the string into `out`.
    fn unescape_rest(&mut self, out: &mut String) -> Result<(), IngestError> {
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.text[start..self.pos]);
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, IngestError> {
        let hex = self
            .text
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    // -- typed field parsers -------------------------------------------------
    //
    // Each consumes exactly one complete JSON value. Type mismatches are
    // *deferred* (`Ok(None)`), never hard errors: the version gate decides
    // later whether they may be reported at all. The `what` closures build
    // the field's error context lazily so the happy path allocates nothing.

    /// A value that must be a string; anything else defers a schema error
    /// naming `what`, matching the `Value` walker's message.
    fn parse_typed_string(
        &mut self,
        what: impl FnOnce() -> String,
    ) -> Result<Option<Cow<'a, str>>, IngestError> {
        match self.peek() {
            Some(b'"') => self.parse_string().map(Some),
            _ => {
                let kind = self.skip_value(0)?;
                self.defer(schema(format!("{} must be a string, got {kind}", what())));
                Ok(None)
            }
        }
    }

    /// A value that must be a number.
    fn parse_typed_number(
        &mut self,
        what: impl FnOnce() -> String,
    ) -> Result<Option<f64>, IngestError> {
        match self.peek() {
            Some(b'-' | b'0'..=b'9') => self.parse_number().map(Some),
            _ => {
                let kind = self.skip_value(0)?;
                self.defer(schema(format!("{} must be a number, got {kind}", what())));
                Ok(None)
            }
        }
    }

    /// A number that must be a non-negative integer (the `as_usize`
    /// contract: no fractions, negatives or overflow).
    fn parse_typed_usize(
        &mut self,
        what: impl Fn() -> String,
    ) -> Result<Option<usize>, IngestError> {
        let Some(n) = self.parse_typed_number(&what)? else {
            return Ok(None);
        };
        if !n.is_finite() || n.fract() != 0.0 || n < 0.0 || n > usize::MAX as f64 {
            self.defer(schema(format!(
                "{} must be a non-negative integer, got {n}",
                what()
            )));
            return Ok(None);
        }
        Ok(Some(n as usize))
    }

    /// `{ "kind": ..., "dims": [...] }`.
    fn parse_shape(
        &mut self,
        what: &dyn Fn() -> String,
    ) -> Result<Option<TensorShape>, IngestError> {
        if self.peek() != Some(b'{') {
            let kind = self.skip_value(0)?;
            self.defer(schema(format!("{} must be an object, got {kind}", what())));
            return Ok(None);
        }
        self.pos += 1;
        let mut kind: Option<Cow<'_, str>> = None;
        let mut dims: Option<Vec<usize>> = None;
        self.in_object(|s| {
            let key = s.parse_string()?;
            s.skip_ws();
            s.expect(b':')?;
            s.skip_ws();
            match key.as_ref() {
                "kind" if kind.is_none() => {
                    kind = s.parse_typed_string(|| format!("{}.kind", what()))?;
                }
                "dims" if dims.is_none() => {
                    if s.peek() != Some(b'[') {
                        let k = s.skip_value(0)?;
                        s.defer(schema(format!("{}.dims must be an array, got {k}", what())));
                        return Ok(());
                    }
                    s.pos += 1;
                    let mut ds = Vec::with_capacity(3);
                    s.in_array(|s, i| {
                        let Some(n) = s.parse_typed_usize(|| format!("{}.dims[{i}]", what()))?
                        else {
                            return Ok(());
                        };
                        if n == 0 {
                            s.defer(schema(format!(
                                "{}.dims[{i}] must be a positive integer",
                                what()
                            )));
                            return Ok(());
                        }
                        ds.push(n);
                        Ok(())
                    })?;
                    dims = Some(ds);
                }
                _ => {
                    s.skip_value(0)?;
                }
            }
            Ok(())
        })?;
        match (kind, dims) {
            (Some(kind), Some(dims)) => match shape_from_parts(&kind, &dims, &what()) {
                Ok(s) => Ok(Some(s)),
                Err(e) => {
                    self.defer(e);
                    Ok(None)
                }
            },
            (kind, _) => {
                // `kind` before `dims`, mirroring the walker's `require`
                // order. If the field was present but mistyped, its
                // objection is already deferred and this one is dropped
                // (first wins).
                let missing = if kind.is_none() { "kind" } else { "dims" };
                self.defer(schema(format!("{} is missing field `{missing}`", what())));
                Ok(None)
            }
        }
    }

    /// The manifest's `nodes` array.
    fn parse_nodes(&mut self) -> Result<Option<Vec<RawNode<'a>>>, IngestError> {
        if self.peek() != Some(b'[') {
            let kind = self.skip_value(0)?;
            self.defer(schema(format!(
                "manifest.nodes must be an array, got {kind}"
            )));
            return Ok(None);
        }
        self.pos += 1;
        let mut nodes = Vec::new();
        self.in_array(|s, i| {
            nodes.push(s.parse_node(i)?);
            Ok(())
        })?;
        Ok(Some(nodes))
    }

    fn parse_node(&mut self, i: usize) -> Result<RawNode<'a>, IngestError> {
        // A placeholder node keeps the scan and node numbering going after
        // a deferred objection; it is never lowered, because a deferred
        // error always aborts before `lower` runs.
        let placeholder = || RawNode {
            name: None,
            op: Cow::Borrowed(""),
            attrs: Vec::new(),
            sparsity: None,
            input: None,
        };
        if self.peek() != Some(b'{') {
            let kind = self.skip_value(0)?;
            self.defer(schema(format!("node {i} must be an object, got {kind}")));
            return Ok(placeholder());
        }
        self.pos += 1;
        let mut op: Option<Cow<'a, str>> = None;
        let mut name: Option<Cow<'a, str>> = None;
        let mut attrs: Attrs<'a> = Vec::new();
        let mut sparsity: Option<f64> = None;
        let mut input: Option<TensorShape> = None;
        // A literal `null` means "absent" for the optional node fields but
        // still claims the key, so a duplicate after it stays skipped —
        // first-occurrence-wins, like `Value` lookup.
        let (mut op_seen, mut name_seen, mut attrs_seen, mut sparsity_seen, mut input_seen) =
            (false, false, false, false, false);
        self.in_object(|s| {
            let key = s.parse_string()?;
            s.skip_ws();
            s.expect(b':')?;
            s.skip_ws();
            match key.as_ref() {
                "op" if !op_seen => {
                    op_seen = true;
                    op = s.parse_typed_string(|| format!("node {i}.op"))?;
                }
                "name" if !name_seen => {
                    name_seen = true;
                    if s.eat_literal("null") {
                        return Ok(());
                    }
                    name = s.parse_typed_string(|| format!("node {i}.name"))?;
                }
                "sparsity" if !sparsity_seen => {
                    sparsity_seen = true;
                    if s.eat_literal("null") {
                        return Ok(());
                    }
                    sparsity = s.parse_typed_number(|| format!("node {i}.sparsity"))?;
                }
                "input" if !input_seen => {
                    input_seen = true;
                    if s.eat_literal("null") {
                        return Ok(());
                    }
                    input = s.parse_shape(&|| format!("node {i}.input"))?;
                }
                "attrs" if !attrs_seen => {
                    attrs_seen = true;
                    if s.peek() != Some(b'{') {
                        let k = s.skip_value(0)?;
                        s.defer(schema(format!("node {i}.attrs must be an object, got {k}")));
                        return Ok(());
                    }
                    s.pos += 1;
                    s.in_object(|s| {
                        let k = s.parse_string()?;
                        s.skip_ws();
                        s.expect(b':')?;
                        s.skip_ws();
                        match s.peek() {
                            Some(b'-' | b'0'..=b'9') => {
                                let n = s.parse_number()?;
                                attrs.push((k, AttrVal::Num(n)));
                            }
                            Some(b'"') => {
                                let v = s.parse_string()?;
                                attrs.push((k, AttrVal::Str(v)));
                            }
                            // Arrays/objects/booleans/null are not
                            // attribute material — dropped, exactly as the
                            // Value walker drops them.
                            _ => {
                                s.skip_value(0)?;
                            }
                        }
                        Ok(())
                    })?;
                }
                _ => {
                    s.skip_value(0)?;
                }
            }
            Ok(())
        })?;
        let Some(op) = op else {
            if !op_seen {
                self.defer(schema(format!("node {i} is missing field `op`")));
            }
            return Ok(placeholder());
        };
        Ok(RawNode {
            name,
            op,
            attrs,
            sparsity,
            input,
        })
    }

    /// The manifest's `skip_edges` array of `[from, to]` pairs.
    fn parse_skip_edges(&mut self) -> Result<Vec<(usize, usize)>, IngestError> {
        if self.peek() != Some(b'[') {
            let kind = self.skip_value(0)?;
            self.defer(schema(format!(
                "manifest.skip_edges must be an array, got {kind}"
            )));
            return Ok(Vec::new());
        }
        self.pos += 1;
        let mut edges = Vec::new();
        self.in_array(|s, i| {
            if s.peek() != Some(b'[') {
                let kind = s.skip_value(0)?;
                s.defer(schema(format!(
                    "skip_edges[{i}] must be an array, got {kind}"
                )));
                return Ok(());
            }
            s.pos += 1;
            // Pair length outranks element typing, matching the walker:
            // collect loosely first, then convert.
            let mut elems: Vec<Result<f64, &'static str>> = Vec::with_capacity(2);
            s.in_array(|s, _| {
                elems.push(match s.peek() {
                    Some(b'-' | b'0'..=b'9') => Ok(s.parse_number()?),
                    _ => Err(s.skip_value(0)?),
                });
                Ok(())
            })?;
            if elems.len() != 2 {
                s.defer(schema(format!(
                    "skip_edges[{i}] must be a [from, to] pair, got {} elements",
                    elems.len()
                )));
                return Ok(());
            }
            let mut pair = [0usize; 2];
            for (j, e) in elems.iter().enumerate() {
                let n = match e {
                    Ok(n) => *n,
                    Err(kind) => {
                        s.defer(schema(format!(
                            "skip_edges[{i}][{j}] must be a number, got {kind}"
                        )));
                        return Ok(());
                    }
                };
                if !n.is_finite() || n.fract() != 0.0 || n < 0.0 || n > usize::MAX as f64 {
                    s.defer(schema(format!(
                        "skip_edges[{i}][{j}] must be a non-negative integer, got {n}"
                    )));
                    return Ok(());
                }
                pair[j] = n as usize;
            }
            edges.push((pair[0], pair[1]));
            Ok(())
        })?;
        Ok(edges)
    }
}
