//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the property-testing subset the PowerLens test-suite uses:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), the
//! [`Strategy`] trait with [`Strategy::prop_map`] /
//! [`Strategy::prop_flat_map`], range strategies over the primitive numeric
//! types, [`collection::vec`], [`option::of`], [`strategy::Just`], and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case reports the case number and the
//!   generated inputs' `Debug` form (when the assertion formats them), but
//!   is not minimized;
//! * **deterministic** — each test function derives its RNG seed from its
//!   own name, so runs are reproducible without a persistence file;
//! * default case count is 64 (upstream: 256) to keep the hermetic test
//!   suite fast. Override per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! // In a test module the functions would carry `#[test]`.
//! proptest! {
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG driving strategy generation (a deterministic [`StdRng`]).
pub type TestRng = StdRng;

/// Creates the deterministic RNG for one property-test function.
///
/// The seed is derived from the test name (FNV-1a), so each test draws an
/// independent, reproducible stream.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Error type for the `Result` a [`proptest!`] body implicitly returns
/// (mirrors `proptest::test_runner::TestCaseError`).
///
/// The shim only uses the `Ok` path — `return Ok(());` skips the rest of a
/// case — but the type exists so bodies that name an error compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-block configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Feeds generated values into `f`, which returns a dependent strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F, S2>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap {
            source: self,
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F, S2> {
    source: S,
    f: F,
    _marker: std::marker::PhantomData<fn() -> S2>,
}

impl<S, S2, F> Strategy for FlatMap<S, F, S2>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

// `f32` is intentionally absent, mirroring the vendored `rand` shim: the
// workspace samples floats exclusively in `f64`.
range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// Core strategy types (mirrors `proptest::strategy`).
pub mod strategy {
    use super::{Strategy, TestRng};

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A size specification: an exact length or a half-open/inclusive range.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and a size spec.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies (mirrors `proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<T>`: `None` 25 % of the time (upstream default),
    /// otherwise `Some` of the inner strategy.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps an element strategy into an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property-test module needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::Just;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property-test functions.
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]  // optional
///
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0.0f64..1.0, 3)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                    )+
                    // A panic inside the body carries the std assert message;
                    // tag it with the case index for reproducibility reports.
                    // The body runs inside a `Result`-returning closure so
                    // `return Ok(());` works for early case rejection, as in
                    // real proptest.
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        },
                    ));
                    match __result {
                        ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                        ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                            panic!(
                                "proptest shim: {} rejected case {}/{}: {}",
                                stringify!($name), __case + 1, __cfg.cases, e
                            );
                        }
                        ::std::result::Result::Err(e) => {
                            eprintln!(
                                "proptest shim: {} failed at case {}/{}",
                                stringify!($name), __case + 1, __cfg.cases
                            );
                            ::std::panic::resume_unwind(e);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn test_rng_is_deterministic_and_name_dependent() {
        use crate::Strategy;
        let mut a = crate::test_rng("foo");
        let mut b = crate::test_rng("foo");
        let mut c = crate::test_rng("bar");
        let s = 0u64..1_000_000;
        let xs: Vec<u64> = (0..8).map(|_| s.generate(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| s.generate(&mut b)).collect();
        let zs: Vec<u64> = (0..8).map(|_| s.generate(&mut c)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_spec(v in crate::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn flat_map_chains_dependent_values(
            (n, v) in (1usize..6).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0.0f64..1.0, n))
            })
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn option_of_produces_both_variants(v in crate::collection::vec(crate::option::of(0usize..4), 64)) {
            // 64 draws at 25% None: both variants all-but-certainly appear.
            prop_assert!(v.iter().any(|x| x.is_none()));
            prop_assert!(v.iter().any(|x| x.is_some()));
        }
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
