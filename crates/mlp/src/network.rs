use powerlens_numeric::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dense::{relu_backward, relu_backward_matrix, relu_matrix, relu_slice};
use crate::loss::softmax_cross_entropy_into;
use crate::{softmax_cross_entropy_batch, Adam, DenseLayer};

/// A plain multi-layer perceptron classifier with ReLU activations between
/// layers and raw logits at the output — the architecture of the paper's
/// target-frequency decision model (Figure 4).
///
/// Per-sample backprop reuses internal scratch buffers across calls, so a
/// training step performs no per-call heap allocation after warm-up; the
/// buffers are excluded from serialization and equality (two MLPs are equal
/// iff their layers are).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
    /// Cached activations (`acts[0]` = input, `acts[n]` = logits).
    #[serde(skip)]
    acts: Vec<Vec<f64>>,
    /// Gradient flowing backwards through the layers.
    #[serde(skip)]
    grad: Vec<f64>,
    /// Spare buffer swapped with `grad` at each layer.
    #[serde(skip)]
    spare: Vec<f64>,
}

impl PartialEq for Mlp {
    fn eq(&self, other: &Self) -> bool {
        self.layers == other.layers
    }
}

impl Mlp {
    /// Creates an MLP with the given layer widths, e.g. `&[25, 64, 32, 14]`
    /// for 25 inputs, two hidden layers, and 14 classes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new<R: Rng + ?Sized>(widths: &[usize], rng: &mut R) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let layers = widths
            .windows(2)
            .map(|w| DenseLayer::new(w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            acts: Vec::new(),
            grad: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.layers[self.layers.len() - 1].out_dim()
    }

    /// Total learnable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(DenseLayer::num_params).sum()
    }

    /// Forward pass returning logits.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let n = self.layers.len();
        let mut h = x.to_vec();
        let mut next = Vec::new();
        for (i, l) in self.layers.iter().enumerate() {
            l.forward_into(&h, &mut next);
            if i + 1 < n {
                relu_slice(&mut next);
            }
            std::mem::swap(&mut h, &mut next);
        }
        h
    }

    /// Predicted class (argmax of logits).
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.forward(x))
    }

    /// Forward pass over a whole batch (`xs` is `batch x in_dim`), returning
    /// the `batch x num_classes` logit matrix. Row `i` is bit-identical to
    /// `forward(xs.row(i))`.
    pub fn forward_batch(&self, xs: &Matrix) -> Matrix {
        let n = self.layers.len();
        let mut h = xs.clone();
        for (i, l) in self.layers.iter().enumerate() {
            h = l.forward_batch(&h);
            if i + 1 < n {
                relu_matrix(&mut h);
            }
        }
        h
    }

    /// Predicted classes for a whole batch, one per row of `xs`.
    pub fn predict_batch(&self, xs: &Matrix) -> Vec<usize> {
        let logits = self.forward_batch(xs);
        (0..logits.rows()).map(|i| argmax(logits.row(i))).collect()
    }

    /// Clears gradient accumulators on all layers.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Forward + backward for one labelled sample; accumulates gradients and
    /// returns the loss.
    ///
    /// All intermediate buffers live on the network and are reused across
    /// calls — the hot path of per-sample training allocates nothing once
    /// warm.
    pub fn backprop(&mut self, x: &[f64], label: usize) -> f64 {
        let n = self.layers.len();
        let Mlp {
            layers,
            acts,
            grad,
            spare,
        } = self;
        // Forward with caches.
        acts.resize_with(n + 1, Vec::new);
        acts[0].clear();
        acts[0].extend_from_slice(x);
        for i in 0..n {
            let (prev, rest) = acts.split_at_mut(i + 1);
            layers[i].forward_into(&prev[i], &mut rest[0]);
            if i + 1 < n {
                relu_slice(&mut rest[0]);
            }
        }
        let loss = softmax_cross_entropy_into(&acts[n], label, grad);
        // Backward.
        for i in (0..n).rev() {
            if i + 1 < n {
                relu_backward(grad, &acts[i + 1]);
            }
            layers[i].backward_into(&acts[i], grad, spare);
            std::mem::swap(grad, spare);
        }
        loss
    }

    /// Forward + backward over a whole mini-batch (`xs` is
    /// `batch x in_dim`); accumulates gradients and returns the per-sample
    /// losses in row order.
    ///
    /// Equivalent to calling [`Mlp::backprop`] once per row — gradients and
    /// losses are bit-identical (the dense layers' batched GEMMs preserve
    /// per-element accumulation order) — but runs over whole matrices, which
    /// is what makes training throughput scale past toy batch sizes.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != xs.rows()` or on dimension mismatches.
    pub fn backprop_batch(&mut self, xs: &Matrix, labels: &[usize]) -> Vec<f64> {
        let n = self.layers.len();
        let mut acts: Vec<Matrix> = Vec::with_capacity(n + 1);
        acts.push(xs.clone());
        for (i, l) in self.layers.iter().enumerate() {
            let mut h = l.forward_batch(acts.last().expect("non-empty"));
            if i + 1 < n {
                relu_matrix(&mut h);
            }
            acts.push(h);
        }
        let (losses, mut grad) = softmax_cross_entropy_batch(&acts[n], labels);
        for i in (0..n).rev() {
            if i + 1 < n {
                relu_backward_matrix(&mut grad, &acts[i + 1]);
            }
            grad = self.layers[i].backward_batch(&acts[i], &grad);
        }
        losses
    }

    /// One Adam step over all layers after a mini-batch of `batch_size`
    /// backprop calls.
    pub fn apply_step(&mut self, adam: &mut Adam, batch_size: usize) {
        adam.begin_step();
        for (i, l) in self.layers.iter_mut().enumerate() {
            adam.step_layer(i, l, batch_size);
        }
    }
}

/// Index of the maximum element (first on ties).
pub(crate) fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new(&[3, 8, 4], &mut rng);
        assert_eq!(net.forward(&[0.1, 0.2, 0.3]).len(), 4);
        assert_eq!(net.in_dim(), 3);
        assert_eq!(net.num_classes(), 4);
        assert_eq!(net.num_params(), 3 * 8 + 8 + 8 * 4 + 4);
    }

    #[test]
    fn backprop_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Mlp::new(&[2, 16, 2], &mut rng);
        let mut adam = Adam::new(0.01);
        let data = [([0.0, 1.0], 0usize), ([1.0, 0.0], 1usize)];
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..300 {
            net.zero_grad();
            let mut loss = 0.0;
            for (x, y) in &data {
                loss += net.backprop(x, *y);
            }
            net.apply_step(&mut adam, data.len());
            if epoch == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(last < first * 0.1, "loss {first} -> {last}");
        assert_eq!(net.predict(&[0.0, 1.0]), 0);
        assert_eq!(net.predict(&[1.0, 0.0]), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Mlp::new(&[4, 6, 3], &mut rng);
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        let x = [0.5, -0.5, 1.0, 0.0];
        assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 1.0, 0.5]), 0);
        assert_eq!(argmax(&[0.0, 2.0, 2.0]), 1);
    }
}
