//! Property-based tests for the board cost model: the monotonicity and
//! consistency guarantees every governor and oracle relies on.

use powerlens_dnn::random::{generate, RandomDnnConfig};
use powerlens_platform::Platform;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_graph(seed: u64) -> powerlens_dnn::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&RandomDnnConfig::default(), &mut rng)
}

fn platforms() -> [Platform; 3] {
    [Platform::agx(), Platform::tx2(), Platform::cloud_v100()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Total layer time never increases with GPU frequency.
    #[test]
    fn time_is_monotone_in_gpu_frequency(seed in 0u64..3000, pi in 0usize..3, batch in 1usize..17) {
        let p = &platforms()[pi];
        let g = random_graph(seed);
        let cpu = p.cpu_table().max_level();
        let layer = &g.layers()[seed as usize % g.num_layers()];
        let mut prev = f64::INFINITY;
        for lvl in 0..p.gpu_levels() {
            let t = p.layer_timing(layer, batch, lvl, cpu).total;
            prop_assert!(t <= prev + 1e-15, "level {lvl}: {t} > {prev}");
            prop_assert!(t > 0.0);
            prev = t;
        }
    }

    /// Instantaneous power never decreases with GPU frequency for a fixed
    /// layer (higher V and f strictly dominate).
    #[test]
    fn power_is_monotone_in_gpu_frequency(seed in 0u64..3000, pi in 0usize..3) {
        let p = &platforms()[pi];
        let g = random_graph(seed);
        let cpu = p.cpu_table().max_level();
        let layer = &g.layers()[seed as usize % g.num_layers()];
        let mut prev = 0.0;
        for lvl in 0..p.gpu_levels() {
            let t = p.layer_timing(layer, 8, lvl, cpu);
            let w = p.layer_power(&t, lvl, cpu);
            prop_assert!(w >= p.idle_power(lvl, cpu) - 1e-12);
            prop_assert!(w + 1e-9 >= prev, "level {lvl}: {w} < {prev}");
            prev = w;
        }
    }

    /// Utilization signals stay in [0, 1] at every operating point.
    #[test]
    fn utilizations_bounded(seed in 0u64..3000, pi in 0usize..3, g_lvl in 0usize..7, c_lvl in 0usize..4) {
        let p = &platforms()[pi];
        let g = random_graph(seed);
        let gl = g_lvl.min(p.gpu_levels() - 1);
        let cl = c_lvl.min(p.cpu_levels() - 1);
        for layer in g.layers().iter().take(40) {
            let t = p.layer_timing(layer, 4, gl, cl);
            prop_assert!((0.0..=1.0).contains(&t.gpu_util));
            prop_assert!((0.0..=1.0).contains(&t.busy_util));
            prop_assert!((0.0..=1.0).contains(&t.cpu_util));
            prop_assert!(t.gpu_util <= t.busy_util + 1e-12);
        }
    }

    /// Batch scaling: doubling the batch never doubles latency *more* than
    /// 2x (weights stream once, overheads amortize) and never reduces it.
    #[test]
    fn batch_scaling_is_subadditive(seed in 0u64..3000, pi in 0usize..3) {
        let p = &platforms()[pi];
        let g = random_graph(seed);
        let cpu = p.cpu_table().max_level();
        let lvl = p.gpu_table().max_level();
        for layer in g.layers().iter().take(40) {
            let t1 = p.layer_timing(layer, 4, lvl, cpu).total;
            let t2 = p.layer_timing(layer, 8, lvl, cpu).total;
            prop_assert!(t2 >= t1 - 1e-15, "{}", layer.name);
            prop_assert!(t2 <= 2.0 * t1 + 1e-15, "{}", layer.name);
        }
    }

    /// Energy is consistent: power x time equals layer_energy.
    #[test]
    fn energy_equals_power_times_time(seed in 0u64..3000, pi in 0usize..3, lvl in 0usize..7) {
        let p = &platforms()[pi];
        let g = random_graph(seed);
        let gl = lvl.min(p.gpu_levels() - 1);
        let cpu = p.cpu_table().max_level();
        let layer = &g.layers()[seed as usize % g.num_layers()];
        let t = p.layer_timing(layer, 8, gl, cpu);
        let e = p.layer_energy(layer, 8, gl, cpu);
        let expect = p.layer_power(&t, gl, cpu) * t.total;
        prop_assert!((e - expect).abs() < 1e-12 * expect.max(1.0));
    }
}
