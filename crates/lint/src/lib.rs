//! Static analysis for PowerLens artifacts: graphs, power views, DVFS plans.
//!
//! PowerLens' correctness hinges on structural invariants the paper states
//! but code elsewhere only spot-checks: power views must tile the layer
//! sequence contiguously and without overlap (Algorithm 1 post-processing),
//! DVFS instrumentation points must be preset *before* each block at a
//! frequency level the platform actually exposes (the 13/14-level Jetson
//! tables), and graphs must thread activation shapes consistently so the
//! depthwise features mean what the predictors assume. This crate turns
//! those invariants into a rule engine with stable error codes
//! (`PL001`-`PL2xx`), severities, source locations, and machine-readable
//! output (human text, JSON, SARIF 2.1.0) — the offline-position analog of
//! NeuralPower/DSO-style static model validation.
//!
//! The rule packs:
//!
//! * **graph** ([`lint_graph`]): shape-inference consistency, dangling or
//!   cyclic skip edges, degenerate operator hyperparameters, stale cost
//!   caches, zero-FLOP layers;
//! * **view** ([`lint_view`]): contiguity, non-overlap, full coverage,
//!   minimum block length, block/layer count agreement;
//! * **plan** ([`lint_plan`]): frequency levels exist on the target
//!   [`Platform`], points precede their blocks in monotone order, no-op
//!   transitions, oracle cross-checks;
//! * **dataflow** ([`lint_dataflow`]): worklist fixpoint facts (reachability,
//!   liveness, output-size intervals, energy envelopes) cross-checked
//!   against the plan, the platform's frequency tables, and the view;
//! * **hybrid** ([`lint_hybrid`]): online-adaptation deployments — nudge
//!   spans vs. the platform table, re-plan token-bucket sanity, and
//!   drift-detector tunables (`PL6xx`, plus `PL406` for phase faults in
//!   the faults pack);
//! * **ingest** ([`lint_import`]): external model manifests flowing through
//!   the `powerlens-ingest` importer — unsupported schema versions, unknown
//!   operators, out-of-range sparsity, shape-inference failures, dangling
//!   or cyclic skip edges (`PL7xx`).
//!
//! CI-grade infrastructure on top of the packs: per-rule metadata
//! (category, since-version, help URIs — [`RuleInfo`]), stable diagnostic
//! fingerprints, inline suppressions ([`LintConfig::suppressions`]), SARIF
//! baseline ratcheting ([`baseline_fingerprints`] / [`new_findings`]), and
//! lint-report caching content-addressed through `powerlens-store`.
//!
//! The catalog lives in `docs/LINTS.md`; gates run in the `lint` CLI
//! subcommand, in debug builds of `core::pipeline` / `sim::engine`, and in
//! `scripts/check.sh` over every zoo model.
//!
//! # Example
//!
//! ```
//! use powerlens_lint::{lint_graph, LintConfig};
//! use powerlens_dnn::zoo;
//!
//! let report = lint_graph(&zoo::resnet34(), &LintConfig::default());
//! assert!(!report.has_errors());
//! ```

#![forbid(unsafe_code)]

mod baseline;
pub mod dataflow;
mod dataflow_rules;
mod diag;
mod fault_rules;
mod graph_rules;
mod hybrid_rules;
mod ingest_rules;
mod output;
mod plan_rules;
mod rules;
mod store_rules;
mod view_rules;

use std::collections::BTreeSet;

use powerlens_cluster::{DistanceCache, PowerView};
use powerlens_dnn::Graph;
use powerlens_faults::FaultPlan;
use powerlens_obs as obs;
use powerlens_platform::{FreqLevel, InstrumentationPlan, Platform};

pub use baseline::{baseline_fingerprints, new_findings, NewFinding, FINGERPRINT_KEY};
pub use dataflow_rules::DataflowContext;
pub use diag::{fingerprint, Diagnostic, LintReport, Location, Severity};
pub use fault_rules::MAX_REASONABLE_SIGMA;
pub use hybrid_rules::HybridContext;
pub use ingest_rules::ImportIssue;
pub use output::{
    dedupe_for_render, render, report_from_value, report_to_value, to_json, to_sarif, Format,
};
pub use plan_rules::PlanContext;
pub use rules::{all_rules, rule_by_code, Pack, RuleInfo, RULES_VERSION};
pub use store_rules::{platform_signature, CachedPlanContext};

/// Tunables of the analyzer; rule *logic* is fixed, thresholds are not.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Blocks shorter than this trigger `PL106` (warning).
    pub min_block_len: usize,
    /// Views with more blocks than this trigger `PL107` (info).
    pub max_blocks: usize,
    /// `PL209` fires when a block's level differs from the oracle's by more
    /// than this many frequency steps.
    pub oracle_tolerance: usize,
    /// `PL506` fires when boot-frequency energy before the first
    /// instrumentation point exceeds this fraction of the best-case total.
    pub boot_energy_fraction: f64,
    /// `PL507` fires when a block's busy-utilization envelopes are disjoint
    /// by more than this gap.
    pub activity_margin: f64,
    /// Rule codes to disable entirely (e.g. `{"PL011"}`). A set, so the
    /// per-finding `enabled` check is O(log n) instead of a linear scan.
    pub disabled: BTreeSet<String>,
    /// Inline suppressions of individual findings: `"PL503"`,
    /// `"PL503@resnet34"`, or `"PL503@resnet34/layer 7"`. Unlike `disabled`
    /// (the rule never runs), a suppressed rule still runs and its findings
    /// are dropped after the fact — scoped waivers, not dead switches.
    pub suppressions: Vec<String>,
}

impl Default for LintConfig {
    /// Thresholds matching the pipeline defaults (`PowerLensConfig`):
    /// min block length 2, at most 8 blocks, oracle tolerance 2 levels,
    /// 10% boot-energy budget, 0.25 activity-envelope margin.
    fn default() -> Self {
        LintConfig {
            min_block_len: 2,
            max_blocks: 8,
            oracle_tolerance: 2,
            boot_energy_fraction: 0.10,
            activity_margin: 0.25,
            disabled: BTreeSet::new(),
            suppressions: Vec::new(),
        }
    }
}

impl LintConfig {
    /// `true` unless `code` is in the disabled set.
    pub fn enabled(&self, code: &str) -> bool {
        !self.disabled.contains(code)
    }

    /// Applies this config's inline suppressions to a finished report.
    fn finish(&self, mut report: LintReport) -> LintReport {
        report.suppress(&self.suppressions);
        report
    }
}

/// Runs the **graph pack** over a graph.
pub fn lint_graph(graph: &Graph, config: &LintConfig) -> LintReport {
    let _span = obs::span("lint.graph");
    let mut report = LintReport::new(graph.name());
    graph_rules::check(graph, config, &mut report);
    config.finish(report)
}

/// Runs the **view pack** over a power view; pass the source graph to also
/// check coverage (`PL104`).
pub fn lint_view(view: &PowerView, graph: Option<&Graph>, config: &LintConfig) -> LintReport {
    let _span = obs::span("lint.view");
    let subject = graph.map_or_else(|| "power-view".to_string(), |g| g.name().to_string());
    let mut report = LintReport::new(subject);
    view_rules::check(view, graph, config, &mut report);
    config.finish(report)
}

/// Runs the distance-cache shape rule (`PL108`, view pack) over a
/// [`DistanceCache`]; pass the source graph to also check that the cache
/// covers its layers.
///
/// Caches built by `DistanceCache::build` satisfy the rule by construction
/// (debug builds also assert it on every re-threshold); this entry point is
/// the release-mode gate for caches assembled from outside sources —
/// deserialized, transferred, or built with `from_parts_unchecked`.
pub fn lint_distance_cache(
    cache: &DistanceCache,
    graph: Option<&Graph>,
    config: &LintConfig,
) -> LintReport {
    let _span = obs::span("lint.distance_cache");
    let subject = graph.map_or_else(|| "distance-cache".to_string(), |g| g.name().to_string());
    let mut report = LintReport::new(subject);
    view_rules::check_distance_cache(cache, graph, config, &mut report);
    config.finish(report)
}

/// Runs the **plan pack** over a DVFS plan in its deployment context (target
/// platform, and optionally the source view/graph and an oracle callback).
pub fn lint_plan(ctx: &PlanContext<'_>, config: &LintConfig) -> LintReport {
    let _span = obs::span("lint.plan");
    let subject = ctx
        .graph
        .map_or_else(|| "dvfs-plan".to_string(), |g| g.name().to_string());
    let mut report = LintReport::new(subject);
    plan_rules::check(ctx, config, &mut report);
    config.finish(report)
}

/// Runs the **store pack** plus the plan pack over a plan deserialized from
/// the content-addressed plan cache. This is the load-time gate: a plan that
/// was valid when written may no longer be deployable — the entry may have
/// been written for a different platform (`PL301`), under an older schema
/// (`PL302`), or corrupted into levels the current frequency tables do not
/// expose (plan pack).
pub fn lint_cached_plan(ctx: &CachedPlanContext<'_>, config: &LintConfig) -> LintReport {
    let _span = obs::span("lint.store");
    let mut report = LintReport::new("cached-plan");
    store_rules::check(ctx, config, &mut report);
    report.merge(lint_plan(
        &PlanContext {
            plan: ctx.plan,
            platform: ctx.platform,
            view: None,
            graph: None,
            oracle: None,
        },
        config,
    ));
    config.finish(report)
}

/// Runs the **faults pack** over a fault-injection plan. Pass the target
/// platform to also validate the GPU level cap against its frequency table
/// (`PL405`). This is the entry gate of the `faultsim` subcommand and the
/// `--faults` flag: a plan with error-severity findings never injects.
pub fn lint_fault_plan(
    plan: &FaultPlan,
    platform: Option<&Platform>,
    config: &LintConfig,
) -> LintReport {
    let _span = obs::span("lint.faults");
    let mut report = LintReport::new("fault-plan");
    fault_rules::check(plan, platform, config, &mut report);
    config.finish(report)
}

/// Runs the **hybrid pack** over a hybrid-governor deployment: nudge span
/// vs. the platform's frequency table, re-plan token bucket sanity, and
/// drift-detector tunables ([`HybridContext`]).
pub fn lint_hybrid(ctx: &HybridContext<'_>, config: &LintConfig) -> LintReport {
    let _span = obs::span("lint.hybrid");
    let mut report = LintReport::new("hybrid-governor");
    hybrid_rules::check(ctx, config, &mut report);
    config.finish(report)
}

/// Runs the **dataflow pack**: fixpoint facts over the graph cross-checked
/// against whatever companion artifacts the [`DataflowContext`] supplies.
pub fn lint_dataflow(ctx: &DataflowContext<'_>, config: &LintConfig) -> LintReport {
    let _span = obs::span("lint.dataflow");
    config.finish(dataflow_rules::check(ctx, config))
}

/// Runs the **ingest pack** (`PL7xx`) over the issues an importer raised
/// against an external model manifest. `subject` is the manifest's model
/// name (or file path when the name is unparseable).
pub fn lint_import(subject: &str, issues: &[ImportIssue], config: &LintConfig) -> LintReport {
    let _span = obs::span("lint.ingest");
    let mut report = LintReport::new(subject);
    ingest_rules::check(issues, config, &mut report);
    config.finish(report)
}

/// Runs every artifact pack (graph, view, plan, dataflow) over a full
/// pipeline output at the given batch size and merges the findings.
pub fn lint_pipeline(
    graph: &Graph,
    view: &PowerView,
    plan: &InstrumentationPlan,
    platform: &Platform,
    batch: usize,
    oracle: Option<&dyn Fn(usize, usize) -> FreqLevel>,
    config: &LintConfig,
) -> LintReport {
    let mut report = lint_graph(graph, config);
    report.merge(lint_view(view, Some(graph), config));
    report.merge(lint_plan(
        &PlanContext {
            plan,
            platform,
            view: Some(view),
            graph: Some(graph),
            oracle,
        },
        config,
    ));
    report.merge(lint_dataflow(
        &DataflowContext {
            graph,
            platform: Some(platform),
            view: Some(view),
            plan: Some(plan),
            batch,
            claim_images_per_joule: None,
            sweep_limit: dataflow::DEFAULT_SWEEP_LIMIT,
        },
        config,
    ));
    report
}

/// Surfaces a report's counts through the observability layer as the
/// `lint.errors` / `lint.warnings` counters (no-op when tracing is off).
pub fn record_to_obs(report: &LintReport) {
    if !obs::enabled() {
        return;
    }
    obs::counter("lint.errors", report.num_errors() as u64);
    obs::counter("lint.warnings", report.num_warnings() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerlens_dnn::zoo;

    #[test]
    fn default_config_enables_everything() {
        let c = LintConfig::default();
        assert!(c.enabled("PL001"));
        assert!(c.enabled("PL209"));
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let mut c = LintConfig::default();
        c.disabled.insert("PL011".to_string());
        let g = zoo::resnet34();
        let r = lint_graph(&g, &c);
        assert!(!r.fired("PL011"));
        let r_on = lint_graph(&g, &LintConfig::default());
        assert!(
            r_on.fired("PL011"),
            "resnet34 has zero-FLOP flatten/add-free layers"
        );
    }

    #[test]
    fn cached_plan_gate_catches_drift_and_schema() {
        use powerlens_platform::{InstrumentationPoint, Platform};

        let agx = Platform::agx();
        let plan = InstrumentationPlan::new(
            vec![InstrumentationPoint {
                layer: 0,
                gpu_level: 3,
            }],
            agx.cpu_table().max_level(),
        );
        let sig = platform_signature(&agx);
        let config = LintConfig::default();

        let clean = lint_cached_plan(
            &CachedPlanContext {
                plan: &plan,
                platform: &agx,
                entry_platform: &sig,
                entry_schema: 7,
                expected_schema: 7,
            },
            &config,
        );
        assert!(!clean.has_errors(), "{:?}", clean.diagnostics);

        let drifted = lint_cached_plan(
            &CachedPlanContext {
                plan: &plan,
                platform: &agx,
                entry_platform: &platform_signature(&Platform::tx2()),
                entry_schema: 7,
                expected_schema: 7,
            },
            &config,
        );
        assert!(drifted.fired("PL301") && drifted.has_errors());

        let outdated = lint_cached_plan(
            &CachedPlanContext {
                plan: &plan,
                platform: &agx,
                entry_platform: &sig,
                entry_schema: 6,
                expected_schema: 7,
            },
            &config,
        );
        assert!(outdated.fired("PL302") && outdated.has_errors());
    }

    #[test]
    fn cached_plan_gate_runs_the_plan_pack() {
        use powerlens_platform::{InstrumentationPoint, Platform};

        let agx = Platform::agx();
        let sig = platform_signature(&agx);
        // A level beyond the AGX table: corrupt or hand-edited entry.
        let plan = InstrumentationPlan::from_points_unchecked(
            vec![InstrumentationPoint {
                layer: 0,
                gpu_level: 999,
            }],
            agx.cpu_table().max_level(),
        );
        let report = lint_cached_plan(
            &CachedPlanContext {
                plan: &plan,
                platform: &agx,
                entry_platform: &sig,
                entry_schema: 7,
                expected_schema: 7,
            },
            &LintConfig::default(),
        );
        assert!(report.fired("PL203") && report.has_errors());
    }

    #[test]
    fn zoo_models_are_error_free() {
        for (name, build) in zoo::all_models() {
            let g = build();
            let r = lint_graph(&g, &LintConfig::default());
            assert!(!r.has_errors(), "{name}: {:?}", r.diagnostics);
            let df = lint_dataflow(&DataflowContext::new(&g), &LintConfig::default());
            assert!(!df.has_errors(), "{name} dataflow: {:?}", df.diagnostics);
        }
    }

    #[test]
    fn suppressions_drop_individual_findings() {
        // GoogLeNet's nine shape-restoring branch pools are stable PL502
        // anchors — plenty of findings to suppress selectively.
        let g = zoo::googlenet();
        let baseline = lint_dataflow(&DataflowContext::new(&g), &LintConfig::default());
        let locs: Vec<String> = baseline
            .diagnostics
            .iter()
            .filter(|d| d.rule.code == "PL502")
            .map(|d| d.location.to_string())
            .collect();
        assert!(locs.len() > 1, "need several PL502 anchors, got {locs:?}");

        let mut c = LintConfig::default();
        c.suppressions.push(format!("PL502@googlenet/{}", locs[0]));
        let scoped = lint_dataflow(&DataflowContext::new(&g), &c);
        assert!(!scoped
            .diagnostics
            .iter()
            .any(|d| d.rule.code == "PL502" && d.location.to_string() == locs[0]));
        // Other anchors of the same rule survive a scoped suppression.
        assert!(scoped.fired("PL502"));

        let mut all = LintConfig::default();
        all.suppressions.push("PL502".to_string());
        assert!(!lint_dataflow(&DataflowContext::new(&g), &all).fired("PL502"));
    }
}
