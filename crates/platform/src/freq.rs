use std::fmt;

/// Index into a platform's frequency table (0 = lowest frequency).
pub type FreqLevel = usize;

/// A discrete DVFS frequency/voltage operating-point table for one clock
/// domain (GPU or CPU cluster).
///
/// Voltage is interpolated linearly between the domain's minimum and maximum
/// operating voltage — the standard shape of published Jetson V/f tables.
///
/// # Example
///
/// ```
/// use powerlens_platform::FrequencyTable;
///
/// let t = FrequencyTable::jetson_agx_gpu();
/// assert_eq!(t.num_levels(), 14);
/// assert!(t.freq_hz(0) < t.freq_hz(13));
/// assert!(t.voltage(0) < t.voltage(13));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyTable {
    freqs_hz: Vec<f64>,
    v_min: f64,
    v_max: f64,
    /// Exponent of the normalized-frequency term in the voltage
    /// interpolation. Published Jetson V/f tables are convex: voltage ramps
    /// steeply near the top of the frequency range (`v_exponent > 1`).
    v_exponent: f64,
}

impl FrequencyTable {
    /// Builds a table from explicit frequencies (ascending, in Hz) and a
    /// voltage range.
    ///
    /// # Panics
    ///
    /// Panics if `freqs_hz` is empty, not strictly ascending, or the voltage
    /// range is inverted.
    pub fn new(freqs_hz: Vec<f64>, v_min: f64, v_max: f64) -> Self {
        assert!(!freqs_hz.is_empty(), "frequency table must be non-empty");
        assert!(
            freqs_hz.windows(2).all(|w| w[0] < w[1]),
            "frequencies must be strictly ascending"
        );
        assert!(v_min <= v_max, "voltage range inverted");
        FrequencyTable {
            freqs_hz,
            v_min,
            v_max,
            v_exponent: 1.0,
        }
    }

    /// Sets the convexity of the voltage curve (see the struct docs).
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is not positive.
    pub fn with_voltage_exponent(mut self, exponent: f64) -> Self {
        assert!(exponent > 0.0, "voltage exponent must be positive");
        self.v_exponent = exponent;
        self
    }

    /// The NVIDIA Jetson AGX Xavier GPU table: 14 levels, 114.75 MHz to
    /// 1377 MHz (the paper's "114 MHz to 1370 MHz across 14 levels").
    pub fn jetson_agx_gpu() -> Self {
        let mhz = [
            114.75, 216.75, 318.75, 420.75, 522.75, 624.75, 675.75, 828.75, 905.25, 1032.75,
            1198.5, 1236.75, 1338.75, 1377.0,
        ];
        FrequencyTable::new(mhz.iter().map(|m| m * 1e6).collect(), 0.60, 1.13)
            .with_voltage_exponent(2.5)
    }

    /// The NVIDIA Jetson TX2 GPU table: 13 levels, 114.75 MHz to 1300.5 MHz
    /// (the paper's "114 MHz to 1300 MHz across 13 levels").
    pub fn jetson_tx2_gpu() -> Self {
        let mhz = [
            114.75, 216.75, 318.75, 420.75, 522.75, 624.75, 726.75, 854.25, 930.75, 1032.75,
            1122.0, 1236.75, 1300.5,
        ];
        FrequencyTable::new(mhz.iter().map(|m| m * 1e6).collect(), 0.65, 1.05)
            .with_voltage_exponent(1.8)
    }

    /// Jetson AGX Xavier Carmel CPU cluster (coarse 8-level table).
    pub fn jetson_agx_cpu() -> Self {
        let mhz = [422.4, 729.6, 1036.8, 1190.4, 1420.8, 1728.0, 2035.2, 2265.6];
        FrequencyTable::new(mhz.iter().map(|m| m * 1e6).collect(), 0.55, 1.05)
    }

    /// Jetson TX2 Denver/A57 CPU cluster (coarse 7-level table).
    pub fn jetson_tx2_cpu() -> Self {
        let mhz = [345.6, 652.8, 960.0, 1267.2, 1574.4, 1881.6, 2035.2];
        FrequencyTable::new(mhz.iter().map(|m| m * 1e6).collect(), 0.60, 1.00)
    }

    /// Number of discrete levels.
    pub fn num_levels(&self) -> usize {
        self.freqs_hz.len()
    }

    /// Frequency in Hz at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn freq_hz(&self, level: FreqLevel) -> f64 {
        self.freqs_hz[level]
    }

    /// Frequency in MHz at `level`.
    pub fn freq_mhz(&self, level: FreqLevel) -> f64 {
        self.freqs_hz[level] / 1e6
    }

    /// Operating voltage at `level` (linear interpolation across the table).
    pub fn voltage(&self, level: FreqLevel) -> f64 {
        if self.freqs_hz.len() == 1 {
            return self.v_max;
        }
        let f = self.freqs_hz[level];
        let lo = self.freqs_hz[0];
        let hi = self.freqs_hz[self.freqs_hz.len() - 1];
        let norm = (f - lo) / (hi - lo);
        self.v_min + (self.v_max - self.v_min) * norm.powf(self.v_exponent)
    }

    /// Highest level index.
    pub fn max_level(&self) -> FreqLevel {
        self.freqs_hz.len() - 1
    }

    /// Clamps an arbitrary index into the valid level range.
    pub fn clamp_level(&self, level: isize) -> FreqLevel {
        level.clamp(0, self.max_level() as isize) as FreqLevel
    }

    /// The level whose frequency is nearest to `hz`.
    pub fn nearest_level(&self, hz: f64) -> FreqLevel {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, &f) in self.freqs_hz.iter().enumerate() {
            let d = (f - hz).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

impl fmt::Display for FrequencyTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} levels: {:.0}-{:.0} MHz",
            self.num_levels(),
            self.freq_mhz(0),
            self.freq_mhz(self.max_level())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_level_counts() {
        assert_eq!(FrequencyTable::jetson_agx_gpu().num_levels(), 14);
        assert_eq!(FrequencyTable::jetson_tx2_gpu().num_levels(), 13);
    }

    #[test]
    fn paper_frequency_ranges() {
        let agx = FrequencyTable::jetson_agx_gpu();
        assert!((agx.freq_mhz(0) - 114.75).abs() < 0.01);
        assert!((agx.freq_mhz(13) - 1377.0).abs() < 0.01);
        let tx2 = FrequencyTable::jetson_tx2_gpu();
        assert!((tx2.freq_mhz(12) - 1300.5).abs() < 0.01);
    }

    #[test]
    fn voltage_monotonic() {
        let t = FrequencyTable::jetson_agx_gpu();
        for l in 1..t.num_levels() {
            assert!(t.voltage(l) > t.voltage(l - 1));
        }
        assert!((t.voltage(0) - 0.60).abs() < 1e-9);
        assert!((t.voltage(t.max_level()) - 1.13).abs() < 1e-9);
    }

    #[test]
    fn clamp_and_nearest() {
        let t = FrequencyTable::jetson_tx2_gpu();
        assert_eq!(t.clamp_level(-3), 0);
        assert_eq!(t.clamp_level(99), t.max_level());
        assert_eq!(t.nearest_level(115e6), 0);
        assert_eq!(t.nearest_level(1.3e9), t.max_level());
        assert_eq!(t.nearest_level(520e6), 4);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted() {
        FrequencyTable::new(vec![2.0, 1.0], 0.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty() {
        FrequencyTable::new(vec![], 0.5, 1.0);
    }

    #[test]
    fn single_level_voltage() {
        let t = FrequencyTable::new(vec![1e9], 0.5, 1.0);
        assert_eq!(t.voltage(0), 1.0);
    }

    #[test]
    fn display_shows_range() {
        let s = FrequencyTable::jetson_agx_gpu().to_string();
        assert!(s.contains("14 levels"));
    }
}
