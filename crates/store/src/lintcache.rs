//! Content-addressed lint-report cache: memory first, JSON-on-disk second.
//!
//! A lint run is a pure function of the graph structure, the rule catalog,
//! the platform, and the batch size — so its reports can be memoized the
//! same way plans are. [`lint_cache_key`] folds [`Graph::fingerprint`], the
//! lint crate's [`RULES_VERSION`], the platform signature, and the batch
//! into one [`CacheKey`]; bumping the rule catalog invalidates every cached
//! report automatically, with no manual flush.
//!
//! [`LintCache`] layers a mutex-guarded in-memory map over an optional disk
//! directory (one `<key-hex>.json` per entry, atomic tmp+rename writes,
//! quarantine-on-corruption — the same discipline as [`crate::DiskTier`]).
//! Keep the lint directory separate from the plan directory: the two file
//! populations share a naming scheme but not a schema, and a shared
//! directory would let one cache quarantine the other's entries.
//!
//! Reports are persisted via `powerlens_lint::report_to_value`, whose
//! inverse *fails* on unknown rule codes or unparseable locations — a stale
//! entry from an older catalog is discarded, never half-trusted.
//!
//! [`Graph::fingerprint`]: powerlens_dnn::Graph::fingerprint
//! [`RULES_VERSION`]: powerlens_lint::RULES_VERSION

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use powerlens_dnn::Graph;
use powerlens_lint::{
    platform_signature, report_from_value, report_to_value, LintReport, RULES_VERSION,
};
use powerlens_obs as obs;
use powerlens_platform::Platform;
use serde::Value;

use crate::key::{CacheKey, Fnv1a};

/// Envelope schema for on-disk lint entries. Bump on layout changes; old
/// files then read as misses and are quarantined.
pub const LINT_SCHEMA_VERSION: u32 = 1;

/// The content address of one lint outcome: graph structure × rule catalog
/// version × platform × batch. Any change to any component re-lints.
pub fn lint_cache_key(graph: &Graph, platform: &Platform, batch: usize) -> CacheKey {
    let mut h = Fnv1a::new();
    h.write_u64(graph.fingerprint());
    h.write_u64(u64::from(RULES_VERSION));
    h.write_bytes(platform_signature(platform).as_bytes());
    h.write_u64(batch as u64);
    CacheKey(h.finish())
}

/// A two-tier (memory + optional disk) cache of full lint runs.
#[derive(Debug)]
pub struct LintCache {
    mem: Mutex<HashMap<u64, Vec<LintReport>>>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LintCache {
    /// A memory-only cache: entries live as long as the process.
    pub fn mem_only() -> Self {
        LintCache {
            mem: Mutex::new(HashMap::new()),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cache backed by `dir` (created if needed). Stale `.tmp` files from
    /// crashed writers are swept on open — they were never published.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn with_disk(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        if let Ok(entries) = fs::read_dir(dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().is_some_and(|e| e == "tmp") && path.is_file() {
                    let _ = fs::remove_file(&path);
                }
            }
        }
        Ok(LintCache {
            mem: Mutex::new(HashMap::new()),
            dir: Some(dir.to_path_buf()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The directory backing this cache, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Cache hits served so far (memory or disk).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to a real lint run.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Returns the cached reports for `key`, consulting memory then disk.
    /// A disk hit back-fills the memory tier.
    pub fn get(&self, key: CacheKey) -> Option<Vec<LintReport>> {
        if let Some(reports) = self.mem.lock().unwrap().get(&key.0).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::counter("lint.cache.hits", 1);
            return Some(reports);
        }
        if let Some(reports) = self.load_disk(key) {
            self.mem.lock().unwrap().insert(key.0, reports.clone());
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::counter("lint.cache.hits", 1);
            return Some(reports);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::counter("lint.cache.misses", 1);
        None
    }

    /// Stores `reports` under `key` in both tiers. Disk-write failures are
    /// swallowed: a cache that cannot persist degrades to memory-only
    /// rather than failing the lint run that produced the reports.
    pub fn put(&self, key: CacheKey, reports: &[LintReport]) {
        self.mem.lock().unwrap().insert(key.0, reports.to_vec());
        if self.dir.is_some() {
            let _ = self.store_disk(key, reports);
        }
    }

    /// The memoized front end: serves `key` from cache or runs `lint` and
    /// back-fills both tiers with its result.
    pub fn get_or_lint<F>(&self, key: CacheKey, lint: F) -> Vec<LintReport>
    where
        F: FnOnce() -> Vec<LintReport>,
    {
        if let Some(reports) = self.get(key) {
            return reports;
        }
        let reports = lint();
        self.put(key, &reports);
        reports
    }

    fn path_for(&self, key: CacheKey) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", key.hex())))
    }

    fn load_disk(&self, key: CacheKey) -> Option<Vec<LintReport>> {
        let path = self.path_for(key)?;
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(_) => {
                quarantine(&path);
                return None;
            }
        };
        match decode_envelope(&text, key) {
            Ok(reports) => Some(reports),
            Err(_) => {
                quarantine(&path);
                None
            }
        }
    }

    fn store_disk(&self, key: CacheKey, reports: &[LintReport]) -> io::Result<()> {
        let dir = self.dir.as_ref().expect("store_disk requires a dir");
        let json = serde_json::to_string_pretty(&encode_envelope(key, reports))
            .map_err(io::Error::other)?;
        let tmp = dir.join(format!("{}.json.tmp", key.hex()));
        fs::write(&tmp, json)?;
        fs::rename(&tmp, dir.join(format!("{}.json", key.hex())))
    }
}

fn encode_envelope(key: CacheKey, reports: &[LintReport]) -> Value {
    Value::Object(vec![
        (
            "schema_version".to_string(),
            Value::Num(f64::from(LINT_SCHEMA_VERSION)),
        ),
        ("key".to_string(), Value::Str(key.hex())),
        (
            "rules_version".to_string(),
            Value::Num(f64::from(RULES_VERSION)),
        ),
        (
            "reports".to_string(),
            Value::Array(reports.iter().map(report_to_value).collect()),
        ),
    ])
}

fn decode_envelope(text: &str, key: CacheKey) -> Result<Vec<LintReport>, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
    let num = |name: &str| -> Result<u32, String> {
        match doc.field(name) {
            Ok(Value::Num(x)) => Ok(*x as u32),
            Ok(other) => Err(format!("`{name}` must be a number, got {}", other.kind())),
            Err(e) => Err(e.to_string()),
        }
    };
    if num("schema_version")? != LINT_SCHEMA_VERSION {
        return Err("schema version mismatch".to_string());
    }
    if num("rules_version")? != RULES_VERSION {
        return Err("rule catalog changed since this entry was written".to_string());
    }
    match doc.field("key") {
        Ok(Value::Str(s)) if *s == key.hex() => {}
        _ => return Err("entry recorded under a different key".to_string()),
    }
    let items = match doc.field("reports") {
        Ok(Value::Array(a)) => a,
        Ok(other) => return Err(format!("`reports` must be an array, got {}", other.kind())),
        Err(e) => return Err(e.to_string()),
    };
    items.iter().map(report_from_value).collect()
}

/// Moves a bad entry aside (best effort) so the next lookup misses cleanly
/// instead of re-parsing known-bad bytes.
fn quarantine(path: &Path) {
    let mut target = path.as_os_str().to_owned();
    target.push(".quarantine");
    if fs::rename(path, PathBuf::from(target)).is_ok() {
        obs::counter("store.quarantined", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerlens_dnn::zoo;
    use powerlens_lint::{lint_dataflow, lint_graph, DataflowContext, LintConfig};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("powerlens_lintcache_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn lint_once(graph: &Graph) -> Vec<LintReport> {
        let config = LintConfig::default();
        vec![
            lint_graph(graph, &config),
            lint_dataflow(&DataflowContext::new(graph), &config),
        ]
    }

    #[test]
    fn key_separates_graphs_platforms_batches_not_reruns() {
        let agx = Platform::agx();
        let g = zoo::alexnet();
        let k = lint_cache_key(&g, &agx, 1);
        assert_eq!(k, lint_cache_key(&g, &agx, 1));
        assert_ne!(k, lint_cache_key(&zoo::resnet34(), &agx, 1));
        assert_ne!(k, lint_cache_key(&g, &Platform::tx2(), 1));
        assert_ne!(k, lint_cache_key(&g, &agx, 8));
    }

    #[test]
    fn mem_cache_serves_second_lookup_without_relinting() {
        let cache = LintCache::mem_only();
        let g = zoo::googlenet();
        let key = lint_cache_key(&g, &Platform::agx(), 1);

        let mut runs = 0;
        let cold = cache.get_or_lint(key, || {
            runs += 1;
            lint_once(&g)
        });
        let warm = cache.get_or_lint(key, || {
            runs += 1;
            lint_once(&g)
        });
        assert_eq!(runs, 1, "second lookup must be served from memory");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cold.len(), warm.len());
        // googlenet's dead branch4.pool chains survive the round trip.
        assert!(warm.iter().any(|r| r.fired("PL502")));
    }

    #[test]
    fn disk_entries_survive_a_reopen() {
        let dir = temp_dir("reopen");
        let g = zoo::alexnet();
        let key = lint_cache_key(&g, &Platform::agx(), 1);
        {
            let cache = LintCache::with_disk(&dir).unwrap();
            cache.put(key, &lint_once(&g));
        }
        let reopened = LintCache::with_disk(&dir).unwrap();
        let reports = reopened.get(key).expect("entry must persist");
        assert_eq!(reopened.hits(), 1);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].subject, "alexnet");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_and_miskeyed_entries_are_quarantined_misses() {
        let dir = temp_dir("corrupt");
        let cache = LintCache::with_disk(&dir).unwrap();
        let g = zoo::alexnet();
        let key = lint_cache_key(&g, &Platform::agx(), 1);

        fs::write(dir.join(format!("{}.json", key.hex())), "{ nope").unwrap();
        assert!(cache.get(key).is_none());
        assert!(dir.join(format!("{}.json.quarantine", key.hex())).exists());

        // A valid envelope recorded under a different key must not serve.
        let other = lint_cache_key(&g, &Platform::tx2(), 1);
        let json = serde_json::to_string(&encode_envelope(other, &lint_once(&g))).unwrap();
        fs::write(dir.join(format!("{}.json", key.hex())), json).unwrap();
        assert!(cache.get(key).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_rules_version_invalidates_the_entry() {
        let dir = temp_dir("stale");
        let cache = LintCache::with_disk(&dir).unwrap();
        let g = zoo::alexnet();
        let key = lint_cache_key(&g, &Platform::agx(), 1);
        cache.put(key, &lint_once(&g));

        let path = dir.join(format!("{}.json", key.hex()));
        let text = fs::read_to_string(&path).unwrap();
        let aged = text.replace(
            &format!("\"rules_version\": {RULES_VERSION}"),
            "\"rules_version\": 0",
        );
        assert_ne!(text, aged, "fixture must actually rewrite the version");
        fs::write(&path, aged).unwrap();

        // Memory still holds it; a fresh cache reading only disk must miss.
        let fresh = LintCache::with_disk(&dir).unwrap();
        assert!(fresh.get(key).is_none());
        assert_eq!(fresh.misses(), 1);
        fs::remove_dir_all(&dir).ok();
    }
}
