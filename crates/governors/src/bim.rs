use powerlens_dnn::{Graph, LayerId};
use powerlens_platform::{FreqLevel, Platform, Telemetry};
use powerlens_sim::{Controller, FreqRequest};

/// The built-in method (BiM): an `ondemand`-style reactive GPU governor.
///
/// Once per sampling window it inspects the trailing GPU load (busy
/// fraction):
///
/// * load above the up-threshold → jump straight to the maximum level
///   (the classic ondemand "race" rule);
/// * otherwise → pick the lowest level that would keep the load just under
///   the up-threshold, i.e. `f_target = f_cur * load / target_load`.
///
/// Because the decision is based on the *previous* window, the frequency
/// always trails the workload (lag), and workloads whose load hovers around
/// the threshold make it oscillate (ping-pong) — the two failure modes
/// Figure 1(A) of the paper illustrates.
#[derive(Debug, Clone)]
pub struct Bim {
    window: f64,
    up_threshold: f64,
    target_load: f64,
    next_decision: f64,
    decisions: usize,
    max_level: FreqLevel,
    freqs_hz: Vec<f64>,
}

impl Bim {
    /// Creates the governor for `platform` with the standard 100 ms sampling
    /// window and an 80 % up-threshold.
    pub fn new(platform: &Platform) -> Self {
        let t = platform.gpu_table();
        Bim {
            window: 0.1,
            up_threshold: 0.80,
            target_load: 0.63,
            next_decision: 0.0,
            decisions: 0,
            max_level: t.max_level(),
            freqs_hz: (0..t.num_levels()).map(|l| t.freq_hz(l)).collect(),
        }
    }

    /// Overrides the sampling window (seconds).
    pub fn with_window(mut self, seconds: f64) -> Self {
        self.window = seconds;
        self
    }

    /// Number of decisions taken so far (windows actually evaluated).
    pub fn num_decisions(&self) -> usize {
        self.decisions
    }

    /// The sampling window (seconds).
    pub fn window(&self) -> f64 {
        self.window
    }

    fn level_for_freq(&self, hz: f64) -> FreqLevel {
        // Lowest level whose frequency satisfies the target.
        for (i, &f) in self.freqs_hz.iter().enumerate() {
            if f >= hz {
                return i;
            }
        }
        self.max_level
    }
}

impl Controller for Bim {
    fn name(&self) -> &str {
        "BiM"
    }

    fn on_task_start(&mut self, _graph: &Graph) {
        // ondemand is oblivious to task boundaries; nothing to reset except
        // letting the decision clock continue.
    }

    fn before_layer(
        &mut self,
        _graph: &Graph,
        _layer: LayerId,
        telemetry: &Telemetry,
        gpu_level: FreqLevel,
        _cpu_level: FreqLevel,
    ) -> FreqRequest {
        let now = telemetry.now();
        if now < self.next_decision {
            return FreqRequest::none();
        }
        // Re-anchor on the fixed window grid rather than `now + window`:
        // a long layer that overshoots the deadline must not phase-shift
        // every subsequent decision (the drift let sustained overshoot
        // stretch the effective sampling period well past the window).
        // Skip whole windows the run slept through, then arm the next
        // grid point strictly after `now`.
        let behind = ((now - self.next_decision) / self.window).floor().max(0.0);
        self.next_decision += (1.0 + behind) * self.window;
        if self.next_decision <= now {
            // Guard against `now` sitting exactly on a grid point.
            self.next_decision += self.window;
        }
        self.decisions += 1;
        let Some(w) = telemetry.window_stats(self.window) else {
            return FreqRequest::none();
        };
        if w.busy_util >= self.up_threshold {
            if gpu_level != self.max_level {
                return FreqRequest::gpu(self.max_level);
            }
            return FreqRequest::none();
        }
        let f_cur = self.freqs_hz[gpu_level];
        let f_target = f_cur * w.busy_util / self.target_load;
        let level = self.level_for_freq(f_target);
        if level != gpu_level {
            FreqRequest::gpu(level)
        } else {
            FreqRequest::none()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerlens_dnn::zoo;
    use powerlens_sim::{Engine, StaticController};

    #[test]
    fn bim_runs_and_reports() {
        let p = Platform::agx();
        let e = Engine::new(&p).with_batch(8);
        let mut bim = Bim::new(&p);
        let r = e.run(&zoo::resnet34(), &mut bim, 16);
        assert!(r.total_time > 0.0);
        assert!(r.energy_efficiency > 0.0);
    }

    #[test]
    fn bim_stays_high_under_sustained_compute_load() {
        // A heavy compute-bound model keeps busy-util ~1, so ondemand should
        // sit at (or race back to) the maximum level for most of the run.
        let p = Platform::agx();
        let e = Engine::new(&p).with_batch(16);
        let mut bim = Bim::new(&p);
        let r = e.run(&zoo::vgg19(), &mut bim, 32);
        let max = p.gpu_table().max_level();
        let time_at_max: f64 = r
            .telemetry
            .samples()
            .iter()
            .filter(|s| s.gpu_level == max)
            .map(|s| s.duration)
            .sum();
        assert!(
            time_at_max / r.total_time > 0.8,
            "ondemand spent only {:.0}% at max",
            100.0 * time_at_max / r.total_time
        );
    }

    #[test]
    fn bim_less_efficient_than_best_static_level() {
        // The headline gap the paper exploits: reactive max-racing wastes
        // energy relative to a well-chosen static frequency.
        let p = Platform::agx();
        let e = Engine::new(&p).with_batch(8);
        let g = zoo::resnet152();
        let mut bim = Bim::new(&p);
        let r_bim = e.run(&g, &mut bim, 16);
        let best = e
            .sweep_gpu_levels(&g, 16)
            .into_iter()
            .map(|r| r.energy_efficiency)
            .fold(0.0, f64::max);
        assert!(best > r_bim.energy_efficiency);
    }

    #[test]
    fn bim_decisions_respect_window() {
        let p = Platform::tx2();
        let e = Engine::new(&p).with_batch(4);
        let mut bim = Bim::new(&p).with_window(0.05);
        let r = e.run(&zoo::alexnet(), &mut bim, 64);
        // With a 50 ms window and a multi-second run, the number of actual
        // switches must stay far below the layer count.
        let layers = zoo::alexnet().num_layers() * 64 / 4;
        assert!(r.num_gpu_switches < layers / 4);
        // The decision clock is phase-locked to the window grid: the number
        // of decisions tracks duration / window, not the (drifting)
        // overshoot-stretched period the old `now + window` re-arm produced.
        let expected = r.total_time / 0.05;
        let decisions = bim.num_decisions() as f64;
        assert!(
            decisions <= expected + 2.0,
            "{decisions} decisions for {expected:.1} windows"
        );
        assert!(
            decisions >= expected * 0.5,
            "{decisions} decisions for {expected:.1} windows"
        );
    }

    #[test]
    fn decision_clock_reanchors_after_overshoot() {
        let p = Platform::tx2();
        let mut bim = Bim::new(&p).with_window(0.05);
        let g = zoo::alexnet();
        let mut t = Telemetry::new();
        // First decision at t = 0 arms the 50 ms grid.
        bim.before_layer(&g, 0, &t, 5, 0);
        assert_eq!(bim.num_decisions(), 1);
        // A long layer overshoots past two grid points (now = 0.12).
        t.record(0.12, 10.0, 1.0, 1.0, 0.1, 5);
        bim.before_layer(&g, 1, &t, 5, 0);
        assert_eq!(bim.num_decisions(), 2);
        // The next deadline is the 0.15 grid point — not 0.17 (= now +
        // window), which is what the pre-fix drifting clock armed.
        t.record(0.02, 10.0, 1.0, 1.0, 0.1, 5); // now = 0.14
        bim.before_layer(&g, 2, &t, 5, 0);
        assert_eq!(bim.num_decisions(), 2, "0.14 < 0.15: deadline not reached");
        t.record(0.011, 10.0, 1.0, 1.0, 0.1, 5); // now = 0.151
        bim.before_layer(&g, 3, &t, 5, 0);
        assert_eq!(bim.num_decisions(), 3, "fires at the 0.15 grid point");
    }

    #[test]
    fn level_for_freq_picks_lowest_satisfying() {
        let p = Platform::tx2();
        let bim = Bim::new(&p);
        assert_eq!(bim.level_for_freq(0.0), 0);
        assert_eq!(bim.level_for_freq(f64::INFINITY), p.gpu_table().max_level());
        let mid = p.gpu_table().freq_hz(5);
        assert_eq!(bim.level_for_freq(mid), 5);
        assert_eq!(bim.level_for_freq(mid + 1.0), 6);
    }

    #[test]
    fn static_comparison_sanity() {
        // BiM should never beat pinning at max on raw speed by construction.
        let p = Platform::agx();
        let e = Engine::new(&p).with_batch(8);
        let g = zoo::resnet34();
        let mut bim = Bim::new(&p);
        let r_bim = e.run(&g, &mut bim, 8);
        let mut maxc = StaticController::new(p.gpu_table().max_level(), p.cpu_table().max_level());
        let r_max = e.run(&g, &mut maxc, 8);
        assert!(r_bim.total_time >= r_max.total_time * 0.999);
    }
}
