use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use powerlens_cluster::{cluster_graph, DistanceCache, PowerView};
use powerlens_dnn::Graph;
use powerlens_features::GlobalFeatures;
use powerlens_governors::oracle;
use powerlens_numeric::NumericError;
use powerlens_obs as obs;
use powerlens_platform::{FreqLevel, Platform};
use powerlens_sim::{InstrumentationPlan, InstrumentationPoint};

use crate::{evaluate_plan, SchemeSpace, TrainedModels};

/// Errors produced by the planning pipeline.
#[derive(Debug)]
pub enum PowerLensError {
    /// A model-driven operation was requested on an untrained instance.
    Untrained,
    /// A numeric failure in feature scaling / clustering.
    Numeric(NumericError),
}

impl fmt::Display for PowerLensError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerLensError::Untrained => {
                write!(f, "prediction models not loaded; train or use plan_oracle")
            }
            PowerLensError::Numeric(e) => write!(f, "numeric failure in pipeline: {e}"),
        }
    }
}

impl Error for PowerLensError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PowerLensError::Numeric(e) => Some(e),
            PowerLensError::Untrained => None,
        }
    }
}

impl From<NumericError> for PowerLensError {
    fn from(e: NumericError) -> Self {
        PowerLensError::Numeric(e)
    }
}

/// Framework configuration shared by planning, dataset generation and
/// ablations.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerLensConfig {
    /// Inference batch size assumed by the cost oracle.
    pub batch: usize,
    /// Per-block latency slack for the frequency oracle (see
    /// [`oracle::best_level_for_range`]).
    pub slack: f64,
    /// Images per run when scoring candidate schemes (the paper evaluates
    /// 50-image runs).
    pub label_images: usize,
    /// Upper bound on power blocks per network. Views exceeding it are
    /// coarsened by merging the smallest block into its more similar
    /// neighbour — the paper's post-processing "adjusting size, shape, or
    /// membership of clusters to achieve better power view" (§2.1.3). The
    /// paper's deployed views have 1-6 blocks.
    pub max_blocks: usize,
    /// The clustering-hyperparameter label space.
    pub schemes: SchemeSpace,
}

impl Default for PowerLensConfig {
    fn default() -> Self {
        PowerLensConfig {
            batch: 8,
            slack: oracle::DEFAULT_SLACK,
            label_images: 48,
            max_blocks: 8,
            schemes: SchemeSpace::default(),
        }
    }
}

/// Wall-clock timings of the offline workflow stages (Table 3's "Workflow"
/// rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkflowTimings {
    /// Depthwise + global feature extraction.
    pub feature_extraction: Duration,
    /// Clustering-hyperparameter prediction (or exhaustive scheme search for
    /// the oracle planner).
    pub hyperparameter_prediction: Duration,
    /// Power-behaviour similarity clustering.
    pub clustering: Duration,
    /// Per-block target-frequency decisions.
    pub decision: Duration,
}

/// Result of planning one network: the power view, the executable
/// instrumentation plan, which scheme was selected, and stage timings.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanOutcome {
    /// The power view (clustered blocks).
    pub view: PowerView,
    /// The proactive DVFS schedule.
    pub plan: InstrumentationPlan,
    /// Index of the selected hyperparameter scheme.
    pub scheme_index: usize,
    /// Offline stage timings.
    pub timings: WorkflowTimings,
}

/// The PowerLens planner: platform + configuration + (optionally) the two
/// trained prediction models.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct PowerLens<'p> {
    platform: &'p Platform,
    config: PowerLensConfig,
    models: Option<TrainedModels>,
    /// Opaque memo slot for content-addressing layers (see
    /// [`PowerLens::context_memo`]). Cloning carries the cached value along
    /// with the configuration it was derived from.
    key_memo: std::sync::OnceLock<u64>,
}

impl<'p> PowerLens<'p> {
    /// Creates a planner without prediction models. Only
    /// [`PowerLens::plan_oracle`] (exhaustive search) is available.
    pub fn untrained(platform: &'p Platform, config: PowerLensConfig) -> Self {
        PowerLens {
            platform,
            config,
            models: None,
            key_memo: std::sync::OnceLock::new(),
        }
    }

    /// Creates a planner with trained models (the deployed configuration).
    pub fn with_models(
        platform: &'p Platform,
        config: PowerLensConfig,
        models: TrainedModels,
    ) -> Self {
        PowerLens {
            platform,
            config,
            models: Some(models),
            key_memo: std::sync::OnceLock::new(),
        }
    }

    /// Latches `compute()` on first call and returns the cached value on
    /// every later one.
    ///
    /// The slot exists for content-addressing layers (the plan store's
    /// context hash covers the config, the serialized models, and the
    /// platform signature — far too expensive to recompute per cache
    /// lookup). Latching is sound because every input of such a hash is
    /// immutable after construction: `PowerLens` exposes no `&mut self`
    /// API, and the platform reference is shared. Any future mutating
    /// method must reset this slot.
    pub fn context_memo(&self, compute: impl FnOnce() -> u64) -> u64 {
        *self.key_memo.get_or_init(compute)
    }

    /// The platform being planned for.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// The framework configuration.
    pub fn config(&self) -> &PowerLensConfig {
        &self.config
    }

    /// The loaded models, if any.
    pub fn models(&self) -> Option<&TrainedModels> {
        self.models.as_ref()
    }

    /// Oracle target frequency for one block (exhaustive sweep under the
    /// latency slack).
    pub fn oracle_block_level(&self, graph: &Graph, lo: usize, hi: usize) -> FreqLevel {
        oracle::best_level_for_range(
            self.platform,
            graph,
            lo,
            hi,
            self.config.batch,
            self.config.slack,
        )
    }

    /// Model-predicted target frequency for one block.
    ///
    /// # Errors
    ///
    /// Returns [`PowerLensError::Untrained`] without models.
    pub fn model_block_level(
        &self,
        graph: &Graph,
        lo: usize,
        hi: usize,
    ) -> Result<FreqLevel, PowerLensError> {
        let models = self.models.as_ref().ok_or(PowerLensError::Untrained)?;
        let feats = GlobalFeatures::of_range(graph, lo, hi);
        let level = models.predict_block_level(&feats);
        Ok(level.min(self.platform.gpu_table().max_level()))
    }

    /// Coarsens a power view to at most `config.max_blocks` blocks by
    /// repeatedly merging the smallest block into whichever neighbour has
    /// the closer mean arithmetic intensity (the dominant power signal).
    pub fn coarsen_view(&self, graph: &Graph, view: PowerView) -> PowerView {
        if view.num_blocks() <= self.config.max_blocks {
            return view;
        }
        let mut blocks = view.blocks().to_vec();
        while blocks.len() > self.config.max_blocks {
            let (i, _) = blocks
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.len())
                .expect("non-empty view");
            let ai = |b: &powerlens_cluster::PowerBlock| {
                graph.stats_range(b.start, b.end).mean_arithmetic_intensity
            };
            let self_ai = ai(&blocks[i]);
            let left = i
                .checked_sub(1)
                .map(|j| (j, (ai(&blocks[j]) - self_ai).abs()));
            let right =
                (i + 1 < blocks.len()).then(|| (i + 1, (ai(&blocks[i + 1]) - self_ai).abs()));
            let partner = match (left, right) {
                (Some((l, dl)), Some((r, dr))) => {
                    if dl <= dr {
                        l
                    } else {
                        r
                    }
                }
                (Some((l, _)), None) => l,
                (None, Some((r, _))) => r,
                (None, None) => break,
            };
            let (keep, remove) = if partner < i {
                (partner, i)
            } else {
                (i, partner)
            };
            blocks[keep].end = blocks[remove].end;
            blocks.remove(remove);
        }
        PowerView::new(blocks)
    }

    /// Builds the instrumentation plan for a given power view, assigning
    /// each block a frequency with `assign`.
    fn plan_from_view<F: FnMut(usize, usize) -> FreqLevel>(
        &self,
        view: &PowerView,
        mut assign: F,
    ) -> InstrumentationPlan {
        let points = view
            .blocks()
            .iter()
            .map(|b| InstrumentationPoint {
                layer: b.start,
                gpu_level: assign(b.start, b.end),
            })
            .collect();
        InstrumentationPlan::new(points, self.platform.cpu_table().max_level())
    }

    /// Debug-build gate: the lint view, plan, and dataflow packs run over
    /// every planning outcome (with the exhaustive oracle as the `PL209`
    /// cross-check), surface counts through the `lint.errors` /
    /// `lint.warnings` obs counters, and refuse to emit an outcome with
    /// error-severity findings. Compiled out of release builds (see
    /// `docs/ARCHITECTURE.md`, "Lint gates").
    #[cfg(debug_assertions)]
    fn debug_lint_gate(&self, graph: &Graph, outcome: &PlanOutcome) {
        let config = powerlens_lint::LintConfig {
            max_blocks: self.config.max_blocks,
            ..powerlens_lint::LintConfig::default()
        };
        let mut report = powerlens_lint::lint_view(&outcome.view, Some(graph), &config);
        let oracle = |lo: usize, hi: usize| self.oracle_block_level(graph, lo, hi);
        report.merge(powerlens_lint::lint_plan(
            &powerlens_lint::PlanContext {
                plan: &outcome.plan,
                platform: self.platform,
                view: Some(&outcome.view),
                graph: Some(graph),
                oracle: Some(&oracle),
            },
            &config,
        ));
        report.merge(powerlens_lint::lint_dataflow(
            &powerlens_lint::DataflowContext {
                graph,
                platform: Some(self.platform),
                view: Some(&outcome.view),
                plan: Some(&outcome.plan),
                batch: self.config.batch,
                claim_images_per_joule: None,
                sweep_limit: powerlens_lint::dataflow::DEFAULT_SWEEP_LIMIT,
            },
            &config,
        ));
        powerlens_lint::record_to_obs(&report);
        assert!(
            !report.has_errors(),
            "plan for `{}` failed lint: {:?}",
            graph.name(),
            report.diagnostics
        );
    }

    /// Full model-driven workflow (§2.1.1 steps ①-⑤): global features →
    /// hyperparameter prediction → clustering → per-block decisions → plan.
    ///
    /// # Errors
    ///
    /// [`PowerLensError::Untrained`] without models; numeric errors from
    /// clustering.
    pub fn plan(&self, graph: &Graph) -> Result<PlanOutcome, PowerLensError> {
        let _plan_span = obs::span("plan");
        let models = self.models.as_ref().ok_or(PowerLensError::Untrained)?;
        let mut timings = WorkflowTimings::default();

        let t = Instant::now();
        let global = {
            let _s = obs::span("feature_extraction");
            GlobalFeatures::of_graph(graph)
        };
        timings.feature_extraction = t.elapsed();

        let t = Instant::now();
        let scheme_index = {
            let _s = obs::span("hyperparameter_prediction");
            models
                .predict_scheme(&global)
                .min(self.config.schemes.len() - 1)
        };
        timings.hyperparameter_prediction = t.elapsed();

        let t = Instant::now();
        let view = {
            let _s = obs::span("clustering");
            self.coarsen_view(
                graph,
                cluster_graph(graph, &self.config.schemes.get(scheme_index))?,
            )
        };
        timings.clustering = t.elapsed();

        let t = Instant::now();
        let plan = {
            let _s = obs::span("decision");
            self.plan_from_view(&view, |lo, hi| {
                let feats = GlobalFeatures::of_range(graph, lo, hi);
                models
                    .predict_block_level(&feats)
                    .min(self.platform.gpu_table().max_level())
            })
        };
        timings.decision = t.elapsed();
        if obs::enabled() {
            obs::histogram("plan.decide_ms", timings.decision.as_secs_f64() * 1e3);
        }

        if obs::enabled() {
            obs::counter("plan.networks_planned", 1);
            obs::counter("plan.blocks", view.num_blocks() as u64);
        }

        let outcome = PlanOutcome {
            view,
            plan,
            scheme_index,
            timings,
        };
        #[cfg(debug_assertions)]
        self.debug_lint_gate(graph, &outcome);
        Ok(outcome)
    }

    /// Oracle-driven workflow: exhaustively scores every scheme (clustering +
    /// per-block oracle frequencies + analytic plan evaluation) and keeps the
    /// best. This is the labelling routine of the dataset generator and the
    /// upper bound the trained models approximate.
    ///
    /// # Errors
    ///
    /// Propagates numeric errors from clustering.
    pub fn plan_oracle(&self, graph: &Graph) -> Result<PlanOutcome, PowerLensError> {
        let _plan_span = obs::span("plan_oracle");
        let mut timings = WorkflowTimings::default();
        let t = Instant::now();
        let _global = {
            let _s = obs::span("feature_extraction");
            GlobalFeatures::of_graph(graph)
        };
        timings.feature_extraction = t.elapsed();

        let search_start = Instant::now();
        let mut best: Option<(f64, usize, PowerView, InstrumentationPlan)> = None;
        let mut clustering_time = Duration::default();
        let mut decision_time = Duration::default();
        // The distance matrix depends only on the shape parameters (alpha,
        // lambda, smooth_radius); the default scheme space varies only
        // ε/minPts, so one DistanceCache serves the whole sweep. A scheme
        // space with heterogeneous shape parameters transparently rebuilds
        // on each mismatch.
        let mut cache: Option<DistanceCache> = None;
        for idx in 0..self.config.schemes.len() {
            obs::counter("plan.schemes_scored", 1);
            let params = self.config.schemes.get(idx);
            let t = Instant::now();
            let view = {
                let _s = obs::span("clustering");
                let c = match cache.take() {
                    Some(c) if c.matches(&params) => c,
                    _ => DistanceCache::build(graph, &params)?,
                };
                let v = c.cluster(&params);
                cache = Some(c);
                self.coarsen_view(graph, v)
            };
            clustering_time += t.elapsed();

            let t = Instant::now();
            let plan = {
                let _s = obs::span("decision");
                self.plan_from_view(&view, |lo, hi| self.oracle_block_level(graph, lo, hi))
            };
            decision_time += t.elapsed();
            if obs::enabled() {
                obs::histogram("plan.decide_ms", t.elapsed().as_secs_f64() * 1e3);
            }

            let eval = evaluate_plan(
                self.platform,
                graph,
                &plan,
                self.config.batch,
                self.config.label_images,
            );
            // Prefer the coarser view on (near-)ties: identical EE with more
            // instrumentation points is strictly worse operationally.
            let better = match best.as_ref() {
                None => true,
                Some((ee, _, v, _)) => {
                    eval.energy_efficiency > ee * 1.0005
                        || (eval.energy_efficiency > ee * 0.9995
                            && view.num_blocks() < v.num_blocks())
                }
            };
            if better {
                best = Some((eval.energy_efficiency, idx, view, plan));
            }
        }
        let (_, scheme_index, view, plan) = best.expect("scheme space is non-empty");
        timings.hyperparameter_prediction =
            search_start.elapsed() - clustering_time - decision_time;
        timings.clustering = clustering_time;
        timings.decision = decision_time;

        if obs::enabled() {
            obs::counter("plan.networks_planned", 1);
            obs::counter("plan.blocks", view.num_blocks() as u64);
        }

        let outcome = PlanOutcome {
            view,
            plan,
            scheme_index,
            timings,
        };
        #[cfg(debug_assertions)]
        self.debug_lint_gate(graph, &outcome);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerlens_dnn::zoo;

    #[test]
    fn untrained_plan_errors() {
        let p = Platform::agx();
        let pl = PowerLens::untrained(&p, PowerLensConfig::default());
        let g = zoo::alexnet();
        match pl.plan(&g) {
            Err(PowerLensError::Untrained) => {}
            other => panic!("expected Untrained, got {other:?}"),
        }
    }

    #[test]
    fn oracle_plan_covers_graph_and_points_align_with_blocks() {
        let p = Platform::agx();
        let pl = PowerLens::untrained(&p, PowerLensConfig::default());
        let g = zoo::resnet152();
        let out = pl.plan_oracle(&g).unwrap();
        assert_eq!(out.view.num_layers(), g.num_layers());
        assert_eq!(out.plan.num_blocks(), out.view.num_blocks());
        for (pt, b) in out.plan.points().iter().zip(out.view.blocks()) {
            assert_eq!(pt.layer, b.start);
            assert!(pt.gpu_level < p.gpu_levels());
        }
    }

    #[test]
    fn oracle_plan_beats_max_frequency_on_efficiency() {
        let p = Platform::agx();
        let pl = PowerLens::untrained(&p, PowerLensConfig::default());
        let g = zoo::resnet152();
        let out = pl.plan_oracle(&g).unwrap();
        let ours = evaluate_plan(&p, &g, &out.plan, 8, 48);
        let max_plan = InstrumentationPlan::new(
            vec![InstrumentationPoint {
                layer: 0,
                gpu_level: p.gpu_table().max_level(),
            }],
            p.cpu_table().max_level(),
        );
        let theirs = evaluate_plan(&p, &g, &max_plan, 8, 48);
        assert!(
            ours.energy_efficiency > theirs.energy_efficiency * 1.1,
            "PowerLens {:.3} vs max-freq {:.3}",
            ours.energy_efficiency,
            theirs.energy_efficiency
        );
    }

    #[test]
    fn oracle_plan_time_increase_is_bounded() {
        // The EE-optimal plan trades time for energy; on the calibrated
        // boards the slowdown stays well under 2x (the paper reports
        // +10-17 % on its hardware; see EXPERIMENTS.md for the deviation).
        let p = Platform::tx2();
        let pl = PowerLens::untrained(&p, PowerLensConfig::default());
        let g = zoo::vgg19();
        let out = pl.plan_oracle(&g).unwrap();
        let ours = evaluate_plan(&p, &g, &out.plan, 8, 48);
        let max_plan = InstrumentationPlan::new(
            vec![InstrumentationPoint {
                layer: 0,
                gpu_level: p.gpu_table().max_level(),
            }],
            p.cpu_table().max_level(),
        );
        let fast = evaluate_plan(&p, &g, &max_plan, 8, 48);
        assert!(
            ours.time <= fast.time * 1.8,
            "{} vs {}",
            ours.time,
            fast.time
        );
        assert!(ours.energy < fast.energy);
    }

    #[test]
    fn timings_are_recorded() {
        let p = Platform::agx();
        let pl = PowerLens::untrained(&p, PowerLensConfig::default());
        let g = zoo::alexnet();
        let out = pl.plan_oracle(&g).unwrap();
        assert!(out.timings.clustering > Duration::ZERO);
    }
}
