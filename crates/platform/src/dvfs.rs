use crate::FreqLevel;
use powerlens_faults::DomainFaults;

/// Which clock domain an actuator (or a switch outcome) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// The GPU clock domain.
    Gpu,
    /// The CPU cluster clock domain.
    Cpu,
}

/// What one [`DvfsActuator::try_set_level`] request actually did.
///
/// The never-trust posture of the store crate applies to actuation too: a
/// caller must not assume the requested level landed — it reads the level
/// back from the outcome (or [`DvfsActuator::level`]) and reacts to
/// `failed` / `clamped` instead of silently running at the wrong level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchOutcome {
    /// The level actually active after the request (the readback).
    pub level: FreqLevel,
    /// Wall-clock stall the request cost (seconds), including retries,
    /// jitter and backoff.
    pub stall: f64,
    /// Failed attempts that were retried.
    pub retries: usize,
    /// `true` when the request was clamped (out-of-range or a fault-plan
    /// level cap) and a different level than requested was targeted.
    pub clamped: bool,
    /// `true` when every attempt failed and the level did not change.
    pub failed: bool,
    /// `true` when the level actually changed.
    pub switched: bool,
}

/// Stateful DVFS actuator for one clock domain.
///
/// Tracks the current level and charges the platform's transition cost for
/// every *actual* change (setting the already-active level is free — this is
/// what lets a well-clustered plan amortize instrumentation while a
/// ping-ponging reactive governor pays repeatedly). Requests outside the
/// domain's frequency table are clamped to the nearest valid level, never
/// silently applied.
///
/// # Example
///
/// ```
/// use powerlens_platform::DvfsActuator;
///
/// let mut a = DvfsActuator::new(13, 0.050, 14);
/// assert_eq!(a.set_level(13), 0.0);      // no-op: already there
/// assert_eq!(a.set_level(5), 0.050);     // pays the transition
/// assert_eq!(a.num_switches(), 1);
/// a.set_level(99);                       // out of range: clamped to 13
/// assert_eq!(a.level(), 13);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsActuator {
    current: FreqLevel,
    transition_cost: f64,
    num_levels: usize,
    num_switches: usize,
    total_overhead: f64,
    num_retries: usize,
    num_failed: usize,
    num_clamped: usize,
}

impl DvfsActuator {
    /// Creates an actuator starting at `initial` with the given per-switch
    /// wall-clock cost in seconds, over a table of `num_levels` levels.
    ///
    /// # Panics
    ///
    /// Panics if `num_levels` is zero or `initial` is outside the table.
    pub fn new(initial: FreqLevel, transition_cost: f64, num_levels: usize) -> Self {
        assert!(num_levels > 0, "frequency table must be non-empty");
        assert!(
            initial < num_levels,
            "initial level {initial} outside table of {num_levels} levels"
        );
        DvfsActuator {
            current: initial,
            transition_cost,
            num_levels,
            num_switches: 0,
            total_overhead: 0.0,
            num_retries: 0,
            num_failed: 0,
            num_clamped: 0,
        }
    }

    /// Requests `level` on the infallible path; returns the wall-clock
    /// stall incurred (0 if the level is already active). Out-of-range
    /// requests are clamped to the table's top level.
    pub fn set_level(&mut self, level: FreqLevel) -> f64 {
        self.try_set_level(level, None).stall
    }

    /// Requests `level` on the fallible path: the request is validated and
    /// clamped against the table (and the fault plan's level cap), then
    /// attempted up to `1 + max_retries` times under the fault plan's
    /// per-attempt failure probability, paying transition cost plus jitter
    /// per attempt and backoff per retry. With `faults: None` this is a
    /// single always-successful attempt at exactly the transition cost —
    /// identical to the historical `set_level` behaviour.
    pub fn try_set_level(
        &mut self,
        level: FreqLevel,
        mut faults: Option<&mut DomainFaults>,
    ) -> SwitchOutcome {
        let mut target = level;
        let mut clamped = false;
        if target >= self.num_levels {
            target = self.num_levels - 1;
            clamped = true;
        }
        if let Some(f) = faults.as_deref_mut() {
            let capped = f.clamp(target);
            clamped |= capped != target;
            target = capped;
        }
        if clamped {
            self.num_clamped += 1;
        }
        if target == self.current {
            return SwitchOutcome {
                level: self.current,
                stall: 0.0,
                retries: 0,
                clamped,
                failed: false,
                switched: false,
            };
        }

        let budget = faults.as_deref().map_or(0, |f| f.max_retries);
        let mut stall = 0.0;
        let mut retries = 0;
        let mut failed = false;
        loop {
            stall += self.transition_cost;
            if let Some(f) = faults.as_deref_mut() {
                stall += f.draw_jitter();
                if f.attempt_fails() {
                    if retries < budget {
                        retries += 1;
                        stall += f.retry_backoff_s;
                        continue;
                    }
                    failed = true;
                }
            }
            break;
        }
        self.num_retries += retries;
        self.total_overhead += stall;
        if failed {
            self.num_failed += 1;
        } else {
            self.current = target;
            self.num_switches += 1;
        }
        SwitchOutcome {
            level: self.current,
            stall,
            retries,
            clamped,
            failed,
            switched: !failed,
        }
    }

    /// Currently active level.
    pub fn level(&self) -> FreqLevel {
        self.current
    }

    /// Number of levels in the domain's frequency table.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Number of actual level changes performed.
    pub fn num_switches(&self) -> usize {
        self.num_switches
    }

    /// Total wall-clock overhead paid for switches so far (seconds),
    /// including failed attempts, retries, jitter and backoff.
    pub fn total_overhead(&self) -> f64 {
        self.total_overhead
    }

    /// Failed attempts that were retried.
    pub fn num_retries(&self) -> usize {
        self.num_retries
    }

    /// Requests whose every attempt failed (level unchanged).
    pub fn num_failed(&self) -> usize {
        self.num_failed
    }

    /// Requests that were clamped (out-of-range or level-capped).
    pub fn num_clamped(&self) -> usize {
        self.num_clamped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerlens_faults::{FaultPlan, FaultSession};

    #[test]
    fn repeated_set_same_level_is_free() {
        let mut a = DvfsActuator::new(3, 0.05, 14);
        for _ in 0..10 {
            assert_eq!(a.set_level(3), 0.0);
        }
        assert_eq!(a.num_switches(), 0);
        assert_eq!(a.total_overhead(), 0.0);
    }

    #[test]
    fn ping_pong_accumulates_overhead() {
        let mut a = DvfsActuator::new(0, 0.05, 14);
        for i in 0..10 {
            a.set_level(if i % 2 == 0 { 5 } else { 0 });
        }
        assert_eq!(a.num_switches(), 10);
        assert!((a.total_overhead() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn level_tracks_latest() {
        let mut a = DvfsActuator::new(0, 0.05, 14);
        a.set_level(7);
        assert_eq!(a.level(), 7);
    }

    #[test]
    fn out_of_range_request_is_never_silently_applied() {
        let mut a = DvfsActuator::new(0, 0.05, 14);
        let out = a.try_set_level(99, None);
        assert!(out.clamped);
        assert_eq!(out.level, 13, "clamped to the table's top level");
        assert_eq!(a.level(), 13);
        assert_eq!(a.num_clamped(), 1);
        // A clamped re-request of the same out-of-range level is a no-op.
        let again = a.try_set_level(99, None);
        assert!(again.clamped && !again.switched);
        assert_eq!(a.num_switches(), 1);
    }

    #[test]
    #[should_panic(expected = "outside table")]
    fn initial_level_is_validated() {
        let _ = DvfsActuator::new(14, 0.05, 14);
    }

    #[test]
    fn clean_try_set_level_matches_set_level() {
        let mut a = DvfsActuator::new(0, 0.05, 14);
        let out = a.try_set_level(5, None);
        assert_eq!(out.stall, 0.05);
        assert!(out.switched && !out.failed && !out.clamped);
        assert_eq!(out.retries, 0);
        assert_eq!(out.level, 5);
    }

    #[test]
    fn certain_failure_exhausts_the_retry_budget() {
        let plan = FaultPlan::parse("switch_fail=1,retries=3,backoff=0.01").unwrap();
        let mut s = FaultSession::new(&plan);
        let mut a = DvfsActuator::new(0, 0.05, 14);
        let out = a.try_set_level(5, Some(&mut s.gpu));
        assert!(out.failed && !out.switched);
        assert_eq!(out.retries, 3);
        assert_eq!(out.level, 0, "level unchanged after total failure");
        assert_eq!(a.num_failed(), 1);
        assert_eq!(a.num_retries(), 3);
        // 4 attempts x 0.05 + 3 retries x 0.01 backoff.
        assert!((out.stall - (4.0 * 0.05 + 3.0 * 0.01)).abs() < 1e-12);
        assert_eq!(a.num_switches(), 0);
    }

    #[test]
    fn level_cap_clamps_gpu_requests() {
        let plan = FaultPlan::parse("cap=6").unwrap();
        let mut s = FaultSession::new(&plan);
        let mut a = DvfsActuator::new(0, 0.05, 14);
        let out = a.try_set_level(12, Some(&mut s.gpu));
        assert!(out.clamped && out.switched);
        assert_eq!(out.level, 6);
        assert_eq!(a.level(), 6);
    }

    #[test]
    fn jitter_extends_the_stall_deterministically() {
        let plan = FaultPlan::parse("jitter=0.02").unwrap().with_seed(3);
        let run = || {
            let mut s = FaultSession::new(&plan);
            let mut a = DvfsActuator::new(0, 0.05, 14);
            a.try_set_level(5, Some(&mut s.gpu)).stall
        };
        let (s1, s2) = (run(), run());
        assert_eq!(s1, s2, "same seed, same jitter");
        assert!((0.05..0.07).contains(&s1));
    }

    #[test]
    fn retry_can_succeed_within_budget() {
        // With p = 0.5 and a generous budget, some request in a series must
        // retry at least once and still land.
        let plan = FaultPlan::parse("switch_fail=0.5,retries=8")
            .unwrap()
            .with_seed(11);
        let mut s = FaultSession::new(&plan);
        let mut a = DvfsActuator::new(0, 0.05, 14);
        let mut saw_retry_success = false;
        for i in 1..40 {
            let out = a.try_set_level(i % 14, Some(&mut s.gpu));
            if out.switched && out.retries > 0 {
                saw_retry_success = true;
            }
        }
        assert!(saw_retry_success);
    }
}
