//! Criterion micro-benchmarks: the content-addressed plan cache. The point
//! of the store is that a warm lookup costs key hashing plus a sharded map
//! clone instead of a full oracle search, so `scripts/bench.sh` compares
//! `store/plan_cold` against `store/plan_warm` — the acceptance floor is a
//! 20x speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use powerlens::{PowerLens, PowerLensConfig};
use powerlens_dnn::zoo;
use powerlens_platform::Platform;
use powerlens_store::{cache_key, CacheMode, PlanStore};
use std::hint::black_box;

fn bench_store(c: &mut Criterion) {
    let agx = Platform::agx();
    let pl = PowerLens::untrained(&agx, PowerLensConfig::default());
    let g = zoo::alexnet();

    let mut group = c.benchmark_group("store");
    // Cold planning is the expensive side; keep the sample count small.
    group.sample_size(10);
    group.bench_function("plan_cold", |b| {
        // `Off` bypasses both tiers, so every iteration is a real plan.
        let store = PlanStore::new(CacheMode::Off, 16, None).unwrap();
        b.iter(|| store.get_or_plan(black_box(&pl), black_box(&g)).unwrap())
    });
    group.bench_function("plan_warm", |b| {
        let store = PlanStore::new(CacheMode::Mem, 16, None).unwrap();
        store.get_or_plan(&pl, &g).unwrap(); // pre-warm
        b.iter(|| store.get_or_plan(black_box(&pl), black_box(&g)).unwrap())
    });
    group.bench_function("cache_key_alexnet", |b| {
        b.iter(|| cache_key(black_box(&pl), black_box(&g)))
    });
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
