//! Model training phase (paper §2.2): fits the clustering-hyperparameter
//! prediction model (Figure 3) and the target-frequency decision model
//! (Figure 4) on the generated datasets, with an 80 %/10 %/10 %
//! train/validation/test split.

use std::fs;
use std::io;
use std::path::Path;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use powerlens_features::GlobalFeatures;
use powerlens_mlp::{
    accuracy_mlp, accuracy_two_stage, train_mlp, train_two_stage, Mlp, Sample, TrainConfig,
    TwoStageNet, TwoStageSample,
};
use powerlens_numeric::{Matrix, Scaler};
use powerlens_obs as obs;

use crate::dataset::Datasets;

/// A serializable per-column z-score scaler.
///
/// A thin wrapper around [`powerlens_numeric::Scaler`] (the same scaler the
/// clustering stage uses) adapted to the training pipeline's slice-iterator
/// inputs and panic-on-misuse conventions. Constant columns are centred but
/// left unscaled, so no feature produces NaN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureScaler {
    inner: Scaler,
}

impl FeatureScaler {
    /// Fits the scaler on rows of equal length.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn fit<'a, I: IntoIterator<Item = &'a [f64]>>(rows: I) -> Self {
        let rows: Vec<Vec<f64>> = rows.into_iter().map(<[f64]>::to_vec).collect();
        assert!(!rows.is_empty(), "cannot fit scaler on empty data");
        let x = Matrix::from_rows(&rows).expect("ragged feature rows");
        let inner = Scaler::fit(&x).expect("scaler fit on non-empty matrix");
        FeatureScaler { inner }
    }

    /// Applies the scaling to one feature vector.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        self.inner.transform_vec(x).expect("scaler dim mismatch")
    }
}

/// Accuracy metrics of the training run (the paper reports 92.6 % for the
/// hyperparameter model and 94.2 % for the decision model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Hyperparameter model accuracy on the held-out test split.
    pub hyper_test_accuracy: f64,
    /// Hyperparameter model accuracy on the validation split.
    pub hyper_val_accuracy: f64,
    /// Decision model accuracy on the held-out test split.
    pub decision_test_accuracy: f64,
    /// Decision model accuracy on the validation split.
    pub decision_val_accuracy: f64,
    /// Fraction of decision-model test predictions within one frequency
    /// level of the optimum (the paper notes mispredictions are "only one or
    /// two levels away").
    pub decision_within_one_level: f64,
    /// Dataset A size.
    pub num_hyper_samples: usize,
    /// Dataset B size.
    pub num_decision_samples: usize,
}

/// The two trained prediction models plus their feature scalers — the
/// deployable artifact of the training phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedModels {
    hyper: TwoStageNet,
    decision: Mlp,
    structural_scaler: FeatureScaler,
    statistics_scaler: FeatureScaler,
    decision_scaler: FeatureScaler,
    /// Metrics recorded at training time.
    pub report: TrainingReport,
}

impl TrainedModels {
    /// Predicts the clustering-hyperparameter scheme index for a network's
    /// global features.
    pub fn predict_scheme(&self, features: &GlobalFeatures) -> usize {
        self.hyper.predict(
            &self.structural_scaler.transform(&features.structural),
            &self.statistics_scaler.transform(&features.statistics),
        )
    }

    /// Predicts the target frequency level for a block's global features.
    pub fn predict_block_level(&self, features: &GlobalFeatures) -> usize {
        self.decision
            .predict(&self.decision_scaler.transform(&features.concat()))
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Propagates serde errors.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Propagates serde errors.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }

    /// Saves the models to a JSON file.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = self.to_json().map_err(io::Error::other)?;
        fs::write(path, json)
    }

    /// Loads models from a JSON file.
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization errors.
    pub fn load(path: &Path) -> io::Result<Self> {
        let json = fs::read_to_string(path)?;
        Self::from_json(&json).map_err(io::Error::other)
    }
}

/// Training-phase configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// Optimizer/epoch settings for the hyperparameter model.
    pub hyper: TrainConfig,
    /// Optimizer/epoch settings for the decision model.
    pub decision: TrainConfig,
    /// Hidden width of both models.
    pub hidden: usize,
    /// RNG seed (splits + initialization).
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            hyper: TrainConfig {
                epochs: 150,
                batch_size: 32,
                lr: 2e-3,
            },
            decision: TrainConfig {
                epochs: 120,
                batch_size: 64,
                lr: 2e-3,
            },
            hidden: 96,
            seed: 7,
        }
    }
}

fn split_indices(n: usize, rng: &mut StdRng) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let n_train = (n as f64 * 0.8).round() as usize;
    let n_val = (n as f64 * 0.1).round() as usize;
    let train = idx[..n_train].to_vec();
    let val = idx[n_train..(n_train + n_val).min(n)].to_vec();
    let test = idx[(n_train + n_val).min(n)..].to_vec();
    (train, val, test)
}

/// Trains both models on the datasets (80/10/10 split) and returns the
/// deployable [`TrainedModels`].
///
/// * `num_schemes` — classifier classes of the hyperparameter model,
/// * `num_levels` — classifier classes of the decision model (13 on TX2,
///   14 on AGX).
///
/// # Panics
///
/// Panics if either dataset is empty.
pub fn train_models(
    datasets: &Datasets,
    num_schemes: usize,
    num_levels: usize,
    cfg: &TrainingConfig,
) -> TrainedModels {
    assert!(
        !datasets.hyper.is_empty() && !datasets.decision.is_empty(),
        "datasets must be non-empty"
    );
    let _span = obs::span("train_models");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // ---- Dataset A: hyperparameter model ----
    let structural_scaler =
        FeatureScaler::fit(datasets.hyper.iter().map(|s| s.structural.as_slice()));
    let statistics_scaler =
        FeatureScaler::fit(datasets.hyper.iter().map(|s| s.statistics.as_slice()));
    let scaled_a: Vec<TwoStageSample> = datasets
        .hyper
        .iter()
        .map(|s| TwoStageSample {
            structural: structural_scaler.transform(&s.structural),
            statistics: statistics_scaler.transform(&s.statistics),
            label: s.label,
        })
        .collect();
    let (tr, va, te) = split_indices(scaled_a.len(), &mut rng);
    let pick = |ids: &[usize]| -> Vec<TwoStageSample> {
        ids.iter().map(|&i| scaled_a[i].clone()).collect()
    };
    let (a_train, a_val, a_test) = (pick(&tr), pick(&va), pick(&te));

    let mut hyper = TwoStageNet::new(
        GlobalFeatures::STRUCTURAL_DIM,
        GlobalFeatures::STATISTICS_DIM,
        cfg.hidden,
        num_schemes,
        &mut rng,
    );
    {
        let _s = obs::span("hyper_model");
        train_two_stage(&mut hyper, &a_train, &cfg.hyper, &mut rng);
    }
    let hyper_val_accuracy = accuracy_two_stage(&hyper, &a_val);
    let hyper_test_accuracy = accuracy_two_stage(&hyper, &a_test);
    if obs::enabled() {
        obs::gauge("train.hyper.val_accuracy", hyper_val_accuracy);
        obs::gauge("train.hyper.test_accuracy", hyper_test_accuracy);
    }

    // ---- Dataset B: decision model ----
    let decision_scaler = FeatureScaler::fit(datasets.decision.iter().map(|s| s.input.as_slice()));
    let scaled_b: Vec<Sample> = datasets
        .decision
        .iter()
        .map(|s| Sample {
            input: decision_scaler.transform(&s.input),
            label: s.label,
        })
        .collect();
    let (tr, va, te) = split_indices(scaled_b.len(), &mut rng);
    let pick =
        |ids: &[usize]| -> Vec<Sample> { ids.iter().map(|&i| scaled_b[i].clone()).collect() };
    let (b_train, b_val, b_test) = (pick(&tr), pick(&va), pick(&te));

    let feat_dim = GlobalFeatures::STRUCTURAL_DIM + GlobalFeatures::STATISTICS_DIM;
    let mut decision = Mlp::new(
        &[feat_dim, cfg.hidden, cfg.hidden / 2, num_levels],
        &mut rng,
    );
    {
        let _s = obs::span("decision_model");
        train_mlp(&mut decision, &b_train, &cfg.decision, &mut rng);
    }
    let decision_val_accuracy = accuracy_mlp(&decision, &b_val);
    let decision_test_accuracy = accuracy_mlp(&decision, &b_test);
    if obs::enabled() {
        obs::gauge("train.decision.val_accuracy", decision_val_accuracy);
        obs::gauge("train.decision.test_accuracy", decision_test_accuracy);
    }
    let within_one = if b_test.is_empty() {
        0.0
    } else {
        b_test
            .iter()
            .filter(|s| {
                let p = decision.predict(&s.input) as isize;
                (p - s.label as isize).abs() <= 1
            })
            .count() as f64
            / b_test.len() as f64
    };

    TrainedModels {
        hyper,
        decision,
        structural_scaler,
        statistics_scaler,
        decision_scaler,
        report: TrainingReport {
            hyper_test_accuracy,
            hyper_val_accuracy,
            decision_test_accuracy,
            decision_val_accuracy,
            decision_within_one_level: within_one,
            num_hyper_samples: datasets.hyper.len(),
            num_decision_samples: datasets.decision.len(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, DatasetConfig};
    use crate::PowerLensConfig;
    use powerlens_platform::Platform;

    #[test]
    fn scaler_fit_transform() {
        let rows: Vec<Vec<f64>> = vec![vec![0.0, 10.0], vec![2.0, 10.0]];
        let s = FeatureScaler::fit(rows.iter().map(Vec::as_slice));
        let t = s.transform(&[1.0, 10.0]);
        assert!(t[0].abs() < 1e-12);
        assert_eq!(t[1], 0.0); // constant column guarded
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let mut rng = StdRng::seed_from_u64(0);
        let (a, b, c) = split_indices(100, &mut rng);
        assert_eq!(a.len(), 80);
        assert_eq!(b.len(), 10);
        assert_eq!(c.len(), 10);
        let mut all: Vec<usize> = a.into_iter().chain(b).chain(c).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn end_to_end_training_produces_usable_models() {
        let p = Platform::agx();
        let plc = PowerLensConfig::default();
        let ds = generate(
            &p,
            &plc,
            &DatasetConfig {
                num_networks: 60,
                seed: 11,
                ..DatasetConfig::default()
            },
        );
        let models = train_models(
            &ds,
            plc.schemes.len(),
            p.gpu_levels(),
            &TrainingConfig::default(),
        );
        // Predictions land in range.
        let g = powerlens_dnn::zoo::resnet34();
        let gf = GlobalFeatures::of_graph(&g);
        assert!(models.predict_scheme(&gf) < plc.schemes.len());
        let bf = GlobalFeatures::of_range(&g, 0, 10);
        assert!(models.predict_block_level(&bf) < p.gpu_levels());
        // On this small dataset the models should still clearly beat chance.
        assert!(
            models.report.decision_test_accuracy > 2.0 / p.gpu_levels() as f64,
            "decision accuracy {}",
            models.report.decision_test_accuracy
        );
        // Serde round trip.
        let json = models.to_json().unwrap();
        let back = TrainedModels::from_json(&json).unwrap();
        assert_eq!(back.predict_scheme(&gf), models.predict_scheme(&gf));
    }
}
