use powerlens_dnn::{Layer, OpKind};

use crate::{FreqLevel, FrequencyTable, PowerDomainModel};

/// Timing breakdown for one layer execution at a given operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerTiming {
    /// Time the GPU compute pipeline needs (seconds).
    pub compute: f64,
    /// Time the memory system needs (seconds).
    pub memory: f64,
    /// CPU-side kernel launch overhead (seconds).
    pub launch: f64,
    /// Wall-clock time: `max(compute, memory) + launch`.
    pub total: f64,
    /// GPU useful-compute fraction during the layer (`compute / total`).
    pub gpu_util: f64,
    /// GPU busy fraction (kernel resident incl. memory stalls) — what an
    /// ondemand-style governor observes as "load".
    pub busy_util: f64,
    /// CPU busy fraction (kernel launches + framework host code).
    pub cpu_util: f64,
}

/// An analytical model of one embedded GPU board (see crate docs).
///
/// Construct with [`Platform::agx`] or [`Platform::tx2`]; all simulation,
/// labelling and governor logic goes through the three queries
/// [`Platform::layer_timing`], [`Platform::layer_power`] and
/// [`Platform::layer_energy`].
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    name: &'static str,
    gpu: FrequencyTable,
    cpu: FrequencyTable,
    gpu_power: PowerDomainModel,
    cpu_power: PowerDomainModel,
    /// Memory subsystem power at full bandwidth utilization (W).
    mem_max_w: f64,
    /// Memory subsystem idle power (W).
    mem_idle_w: f64,
    /// Always-on board power (regulators, carrier, W).
    board_static_w: f64,
    /// Peak GPU FLOPs per clock cycle (cores x 2 for FMA).
    flops_per_cycle: f64,
    /// Effective off-chip memory bandwidth (bytes/second).
    mem_bw: f64,
    /// Kernel launch overhead at maximum CPU frequency (seconds per layer).
    launch_base: f64,
    /// GPU-side fixed time per kernel (scheduling, tail effect) — does not
    /// scale with the core clock. Small kernels are therefore frequency
    /// *inelastic*: lowering the clock barely slows them, which is why
    /// blocks dominated by small kernels prefer lower frequencies than
    /// GEMM-heavy blocks. This per-kernel overhead is what gives different
    /// power blocks genuinely different optimal frequencies.
    kernel_overhead: f64,
    /// Fraction of full dynamic power the GPU burns while a resident kernel
    /// is stalled on memory (SMs keep clocking). This is what makes running
    /// memory-bound code at high frequency wasteful — the headroom PowerLens
    /// exploits.
    stall_activity: f64,
    /// Clock-tree activity floor: fraction of full dynamic power the GPU
    /// burns whenever its clocks run, even with no kernel resident (launch
    /// gaps). Running launch-bound code at a high clock therefore wastes
    /// `floor * C * V^2 * f` — the reason launch-bound blocks prefer the
    /// lowest levels.
    clock_floor: f64,
    /// Execution stall per DVFS level change (seconds): pipeline drain +
    /// PLL relock. The paper's measured "50 ms average overhead" (§3.3) is
    /// the *end-to-end userspace latency* — mostly an asynchronous ramp
    /// during which execution continues — reproduced separately as
    /// [`Platform::dvfs_settle_latency`].
    dvfs_transition: f64,
    /// End-to-end latency of a userspace DVFS command until the new
    /// frequency is fully in effect (seconds).
    dvfs_settle: f64,
    /// Tensor-core-style throughput multiplier applied on top of the
    /// baseline [`Platform::kernel_efficiency`] for attention-class
    /// operators (dense GEMM pipelines that mixed-precision matrix units
    /// accelerate). `1.0` — the value for every built-in board — is exactly
    /// the pre-tensor-core model, bit for bit.
    tensor_core_boost: f64,
}

impl Platform {
    /// NVIDIA Jetson AGX Xavier under MAXN: 512-core Volta GPU
    /// (~1.4 fp32 TFLOPS), ~100 GB/s effective LPDDR4x bandwidth,
    /// ~30 W board envelope.
    pub fn agx() -> Self {
        Platform {
            name: "agx",
            gpu: FrequencyTable::jetson_agx_gpu(),
            cpu: FrequencyTable::jetson_agx_cpu(),
            gpu_power: PowerDomainModel::new(2.0, 1.25e-8),
            cpu_power: PowerDomainModel::new(0.8, 2.6e-9),
            mem_max_w: 5.0,
            mem_idle_w: 0.8,
            board_static_w: 3.5,
            flops_per_cycle: 1024.0,
            mem_bw: 45.0e9,
            launch_base: 80e-6,
            kernel_overhead: 25e-6,
            stall_activity: 0.50,
            clock_floor: 0.08,
            dvfs_transition: 0.0005,
            dvfs_settle: 0.050,
            tensor_core_boost: 1.0,
        }
    }

    /// NVIDIA Jetson TX2 under MAXN: 256-core Pascal GPU (~0.67 fp32 TFLOPS),
    /// ~40 GB/s effective LPDDR4 bandwidth, ~15 W board envelope.
    pub fn tx2() -> Self {
        Platform {
            name: "tx2",
            gpu: FrequencyTable::jetson_tx2_gpu(),
            cpu: FrequencyTable::jetson_tx2_cpu(),
            gpu_power: PowerDomainModel::new(0.8, 7.5e-9),
            cpu_power: PowerDomainModel::new(0.5, 2.0e-9),
            mem_max_w: 2.5,
            mem_idle_w: 0.5,
            board_static_w: 1.6,
            flops_per_cycle: 512.0,
            mem_bw: 22.0e9,
            launch_base: 120e-6,
            kernel_overhead: 30e-6,
            stall_activity: 0.38,
            clock_floor: 0.06,
            dvfs_transition: 0.0005,
            dvfs_settle: 0.050,
            tensor_core_boost: 1.0,
        }
    }

    /// A datacenter-class board in the V100 power envelope — the paper's
    /// §5 future-work target ("we plan to apply PowerLens in cloud
    /// servers"). Seven application clocks, ~250 W TDP, HBM2 bandwidth.
    pub fn cloud_v100() -> Self {
        let gpu = FrequencyTable::new(
            [405.0, 592.5, 705.0, 810.0, 945.0, 1147.5, 1380.0]
                .iter()
                .map(|m| m * 1e6)
                .collect(),
            0.75,
            1.05,
        )
        .with_voltage_exponent(2.0);
        let cpu = FrequencyTable::new([1.2e9, 1.8e9, 2.4e9, 3.0e9].to_vec(), 0.7, 1.1);
        Platform {
            name: "cloud_v100",
            gpu,
            cpu,
            gpu_power: PowerDomainModel::new(25.0, 1.5e-7),
            cpu_power: PowerDomainModel::new(10.0, 8.0e-9),
            mem_max_w: 40.0,
            mem_idle_w: 5.0,
            board_static_w: 15.0,
            flops_per_cycle: 10240.0,
            mem_bw: 700.0e9,
            launch_base: 8e-6,
            kernel_overhead: 6e-6,
            stall_activity: 0.50,
            clock_floor: 0.08,
            dvfs_transition: 0.0005,
            dvfs_settle: 0.025,
            tensor_core_boost: 1.0,
        }
    }

    /// Crate-internal constructor used by [`crate::PlatformBuilder`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        name: &'static str,
        gpu: FrequencyTable,
        cpu: FrequencyTable,
        gpu_power: PowerDomainModel,
        cpu_power: PowerDomainModel,
        mem_max_w: f64,
        mem_idle_w: f64,
        board_static_w: f64,
        flops_per_cycle: f64,
        mem_bw: f64,
        launch_base: f64,
        kernel_overhead: f64,
        stall_activity: f64,
        clock_floor: f64,
        dvfs_transition: f64,
        dvfs_settle: f64,
        tensor_core_boost: f64,
    ) -> Self {
        Platform {
            name,
            gpu,
            cpu,
            gpu_power,
            cpu_power,
            mem_max_w,
            mem_idle_w,
            board_static_w,
            flops_per_cycle,
            mem_bw,
            launch_base,
            kernel_overhead,
            stall_activity,
            clock_floor,
            dvfs_transition,
            dvfs_settle,
            tensor_core_boost,
        }
    }

    /// Board name (`"agx"` or `"tx2"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// GPU frequency table.
    pub fn gpu_table(&self) -> &FrequencyTable {
        &self.gpu
    }

    /// CPU frequency table.
    pub fn cpu_table(&self) -> &FrequencyTable {
        &self.cpu
    }

    /// Number of GPU DVFS levels (14 on AGX, 13 on TX2 — Table 1 setup).
    pub fn gpu_levels(&self) -> usize {
        self.gpu.num_levels()
    }

    /// Number of CPU DVFS levels.
    pub fn cpu_levels(&self) -> usize {
        self.cpu.num_levels()
    }

    /// Execution stall per DVFS level change (seconds).
    pub fn dvfs_transition_cost(&self) -> f64 {
        self.dvfs_transition
    }

    /// End-to-end latency of one userspace DVFS command (seconds) — the
    /// quantity the paper's §3.3 experiment measures at ~50 ms.
    pub fn dvfs_settle_latency(&self) -> f64 {
        self.dvfs_settle
    }

    /// Returns a copy with a different DVFS transition cost — used by the
    /// sensitivity ablation.
    pub fn with_dvfs_transition_cost(mut self, seconds: f64) -> Self {
        self.dvfs_transition = seconds;
        self
    }

    /// Fraction of peak GPU throughput a kernel of this operator kind
    /// achieves (kernel efficiency).
    pub fn kernel_efficiency(op: &OpKind) -> f64 {
        match *op {
            OpKind::Conv2d { groups, in_ch, .. } if groups == in_ch && in_ch > 1 => 0.12,
            OpKind::Conv2d { kernel: 1, .. } => 0.45,
            OpKind::Conv2d { groups, .. } if groups > 1 => 0.35,
            OpKind::Conv2d { .. } => 0.55,
            OpKind::Linear { .. } => 0.40,
            OpKind::Attention { .. } => 0.35,
            OpKind::PatchEmbed { .. } => 0.45,
            OpKind::Pool { .. } => 0.10,
            OpKind::BatchNorm | OpKind::LayerNorm => 0.15,
            OpKind::Activation(_) => 0.20,
            OpKind::Add => 0.20,
            // Table gathers hit scattered rows; throughput is latency-bound
            // like the other data-movement ops.
            OpKind::Concat { .. } | OpKind::Flatten | OpKind::Embedding { .. } => 0.10,
        }
    }

    /// [`Platform::kernel_efficiency`] adjusted for this board's hardware:
    /// attention-class operators (the dense GEMM pipelines that tensor-core
    /// style matrix units accelerate) get the board's throughput multiplier.
    /// With the default multiplier of `1.0` this is bit-identical to the
    /// baseline table.
    pub fn op_efficiency(&self, op: &OpKind) -> f64 {
        let eff = Self::kernel_efficiency(op);
        match *op {
            OpKind::Attention { .. } => eff * self.tensor_core_boost,
            _ => eff,
        }
    }

    /// Roofline timing of `layer` for a batch of `batch` samples at the given
    /// GPU/CPU levels.
    ///
    /// # Panics
    ///
    /// Panics if a level is out of range for its table.
    pub fn layer_timing(
        &self,
        layer: &Layer,
        batch: usize,
        gpu_level: FreqLevel,
        cpu_level: FreqLevel,
    ) -> LayerTiming {
        let eff = self.op_efficiency(&layer.op);
        // Sparsity-scaled activity: zero operands skip their
        // multiply-accumulates, so only the surviving density of the FLOP
        // volume exercises the pipelines. Dense layers (sparsity 0) multiply
        // by exactly 1.0 — bit-identical to the sparsity-blind model.
        let density = (1.0 - layer.sparsity()).clamp(0.0, 1.0);
        let flops = layer.flops() * batch as f64 * density;
        // Activations scale with batch; weights stream once per kernel.
        let bytes = layer.activation_bytes() * batch as f64 + layer.weight_bytes();
        self.timing_from(flops, bytes, eff, gpu_level, cpu_level)
    }

    /// [`layer_timing`](Self::layer_timing) with the layer-derived
    /// quantities already extracted, so per-level sweeps
    /// ([`layer_envelope`](Self::layer_envelope)) hoist them out of the
    /// loop instead of re-walking the operator every iteration.
    fn timing_from(
        &self,
        flops: f64,
        bytes: f64,
        eff: f64,
        gpu_level: FreqLevel,
        cpu_level: FreqLevel,
    ) -> LayerTiming {
        let f_gpu = self.gpu.freq_hz(gpu_level);
        let f_cpu = self.cpu.freq_hz(cpu_level);

        let compute = if flops > 0.0 {
            self.kernel_overhead + flops / (self.flops_per_cycle * f_gpu * eff)
        } else {
            0.0
        };
        let memory = bytes / self.mem_bw;
        // Launch latency = fixed driver/DMA part + CPU-clock-scaled part.
        let cpu_scale = self.cpu.freq_hz(self.cpu.max_level()) / f_cpu;
        let launch = self.launch_base * (0.4 + 0.6 * cpu_scale);
        let total = compute.max(memory) + launch;
        let gpu_util = if total > 0.0 { compute / total } else { 0.0 };
        let busy_util = if total > 0.0 {
            compute.max(memory) / total
        } else {
            0.0
        };
        // Framework host code (data staging, Python dispatch) keeps the CPU
        // partially busy throughout inference, on top of kernel launches.
        let cpu_util = if total > 0.0 {
            (launch / total + 0.10).min(1.0)
        } else {
            0.10
        };
        LayerTiming {
            compute,
            memory,
            launch,
            total,
            gpu_util,
            busy_util,
            cpu_util,
        }
    }

    /// Average board power (watts) while executing a layer with the given
    /// timing at the given operating point.
    pub fn layer_power(
        &self,
        timing: &LayerTiming,
        gpu_level: FreqLevel,
        cpu_level: FreqLevel,
    ) -> f64 {
        // While a kernel is resident (max(compute, memory) span) the SMs are
        // either doing useful work or clocking through memory stalls; stalls
        // burn `stall_activity` of full dynamic power.
        let gpu_act = if timing.total > 0.0 {
            let resident = timing.compute.max(timing.memory);
            let stalled = resident - timing.compute;
            let act = (timing.compute + self.stall_activity * stalled) / timing.total;
            act.max(self.clock_floor)
        } else {
            self.clock_floor
        };
        let mem_act = if timing.total > 0.0 {
            (timing.memory / timing.total).min(1.0)
        } else {
            0.0
        };
        // CPU is busy during launches plus a small background load
        // (framework host code).
        let cpu_act = timing.cpu_util;
        self.idle_power(gpu_level, cpu_level)
            + self.gpu_power.c_eff
                * self.gpu.voltage(gpu_level).powi(2)
                * self.gpu.freq_hz(gpu_level)
                * gpu_act
            + self.mem_max_w * mem_act
            + self.cpu_power.c_eff
                * self.cpu.voltage(cpu_level).powi(2)
                * self.cpu.freq_hz(cpu_level)
                * cpu_act
    }

    /// Board power with all domains idle at the given operating point.
    pub fn idle_power(&self, _gpu_level: FreqLevel, _cpu_level: FreqLevel) -> f64 {
        self.board_static_w + self.gpu_power.idle_w + self.cpu_power.idle_w + self.mem_idle_w
    }

    /// Energy (joules) to execute `layer` for `batch` samples at the given
    /// operating point.
    pub fn layer_energy(
        &self,
        layer: &Layer,
        batch: usize,
        gpu_level: FreqLevel,
        cpu_level: FreqLevel,
    ) -> f64 {
        let t = self.layer_timing(layer, batch, gpu_level, cpu_level);
        self.layer_power(&t, gpu_level, cpu_level) * t.total
    }

    /// Static envelope of `layer` over *every* GPU level at a fixed CPU
    /// level: the tightest `[lo, hi]` bounds any DVFS plan on this platform
    /// can achieve for energy, runtime, and busy utilization. This is the
    /// abstract-domain seed of the lint crate's dataflow analysis — a plan
    /// claiming numbers outside these bounds is statically impossible.
    /// Returns `None` only if the envelope sweep produced nothing for the
    /// layer — impossible for well-formed layers, but imported graphs reach
    /// this through the lint dataflow pass, which must report a finding
    /// rather than abort.
    pub fn layer_envelope(
        &self,
        layer: &Layer,
        batch: usize,
        cpu_level: FreqLevel,
    ) -> Option<LayerEnvelope> {
        self.graph_envelopes(std::slice::from_ref(layer), batch, cpu_level)
            .pop()
    }

    /// [`layer_envelope`](Self::layer_envelope) for a whole layer sequence
    /// at once. The per-GPU-level coefficients (frequency reciprocal,
    /// dynamic-power coefficient) are hoisted across all layers, and the
    /// per-level energy is evaluated in an expanded division-free form, so
    /// the layers x levels sweep is a short dependency-free arithmetic
    /// kernel. Bounds are rounded *outward* by a relative [`ENVELOPE_SLOP`]
    /// so they remain a sound over-approximation of the exact
    /// [`layer_energy`](Self::layer_energy) / [`layer_timing`](Self::layer_timing)
    /// values despite the re-associated arithmetic.
    pub fn graph_envelopes(
        &self,
        layers: &[Layer],
        batch: usize,
        cpu_level: FreqLevel,
    ) -> Vec<LayerEnvelope> {
        let f_cpu = self.cpu.freq_hz(cpu_level);
        let cpu_scale = self.cpu.freq_hz(self.cpu.max_level()) / f_cpu;
        let launch = self.launch_base * (0.4 + 0.6 * cpu_scale);
        let idle = self.idle_power(0, cpu_level);
        let cpu_dyn = self.cpu_power.c_eff * self.cpu.voltage(cpu_level).powi(2) * f_cpu;
        // Per-level invariants: 1/(flops_per_cycle * f_gpu) for the compute
        // roofline, and the GPU dynamic-power coefficient c_eff * V^2 * f.
        let levels: Vec<(f64, f64)> = (0..self.gpu_levels())
            .map(|g| {
                let f = self.gpu.freq_hz(g);
                (
                    1.0 / (self.flops_per_cycle * f),
                    self.gpu_power.c_eff * self.gpu.voltage(g).powi(2) * f,
                )
            })
            .collect();

        layers
            .iter()
            .map(|layer| {
                let eff = self.op_efficiency(&layer.op);
                // Same sparsity density as `layer_timing` — the envelope must
                // bound exactly the quantities the simulator produces.
                let density = (1.0 - layer.sparsity()).clamp(0.0, 1.0);
                let flops = layer.flops() * batch as f64 * density;
                let bytes = layer.activation_bytes() * batch as f64 + layer.weight_bytes();
                let memory = bytes / self.mem_bw;
                let flops_eff = flops / eff;
                let (mut e_lo, mut e_hi) = (f64::INFINITY, f64::NEG_INFINITY);
                let (mut r_lo, mut r_hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &(inv_fpc_f, gpu_dyn) in &levels {
                    let compute = if flops > 0.0 {
                        self.kernel_overhead + flops_eff * inv_fpc_f
                    } else {
                        0.0
                    };
                    // The kernel-resident span: compute or memory stalls.
                    let resident = compute.max(memory);
                    let total = resident + launch;
                    // layer_power * total with `total` distributed through:
                    // every activity-fraction division by `total` cancels,
                    // leaving the clamps as min/max against `total` itself.
                    let e = if total > 0.0 {
                        let gpu_act_t = (compute + self.stall_activity * (resident - compute))
                            .max(self.clock_floor * total);
                        let mem_act_t = memory.min(total);
                        let cpu_act_t = (launch + 0.10 * total).min(total);
                        idle * total
                            + gpu_dyn * gpu_act_t
                            + self.mem_max_w * mem_act_t
                            + cpu_dyn * cpu_act_t
                    } else {
                        0.0
                    };
                    (e_lo, e_hi) = (e_lo.min(e), e_hi.max(e));
                    (r_lo, r_hi) = (r_lo.min(resident), r_hi.max(resident));
                }
                // Runtime and busy utilization are monotone in the resident
                // span (launch is level-independent), so their extremes are
                // the extremes of `resident` pushed through the formulas.
                let busy = |r: f64| {
                    let t = r + launch;
                    if t > 0.0 {
                        r / t
                    } else {
                        0.0
                    }
                };
                let out = |lo: f64, hi: f64| {
                    (lo - lo.abs() * ENVELOPE_SLOP, hi + hi.abs() * ENVELOPE_SLOP)
                };
                LayerEnvelope {
                    energy: out(e_lo, e_hi),
                    runtime: out(r_lo + launch, r_hi + launch),
                    busy_util: {
                        let (lo, hi) = out(busy(r_lo), busy(r_hi));
                        (lo.max(0.0), hi.min(1.0))
                    },
                }
            })
            .collect()
    }
}

/// Relative outward rounding applied to [`Platform::graph_envelopes`]
/// bounds. The fast kernel re-associates the exact per-level arithmetic,
/// which drifts results by a few ULPs (~1e-15 relative); widening by 1e-9
/// keeps the envelope a strict superset of every exact per-level value
/// while staying 6+ orders of magnitude below any threshold the lint rules
/// compare against.
pub const ENVELOPE_SLOP: f64 = 1e-9;

/// `[lo, hi]` bounds of one layer's behaviour across the whole GPU
/// frequency table (see [`Platform::layer_envelope`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerEnvelope {
    /// Energy bounds in joules.
    pub energy: (f64, f64),
    /// Runtime bounds in seconds.
    pub runtime: (f64, f64),
    /// Busy-utilization bounds (fraction of the layer's span the board is
    /// doing compute or memory work, as opposed to launch overhead).
    pub busy_util: (f64, f64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerlens_dnn::{zoo, ActKind, TensorShape};

    fn conv_layer() -> Layer {
        Layer::new(
            0,
            "conv",
            OpKind::Conv2d {
                in_ch: 256,
                out_ch: 256,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: 1,
            },
            TensorShape::chw(256, 28, 28),
        )
    }

    fn relu_layer() -> Layer {
        Layer::new(
            0,
            "relu",
            OpKind::Activation(ActKind::Relu),
            TensorShape::chw(256, 56, 56),
        )
    }

    #[test]
    fn compute_time_scales_inverse_with_frequency() {
        let p = Platform::agx();
        let l = conv_layer();
        // Use a large batch so the fixed per-kernel overhead is negligible
        // next to the clock-scaled portion.
        let hi = p.layer_timing(&l, 64, p.gpu_table().max_level(), p.cpu_table().max_level());
        let lo = p.layer_timing(&l, 64, 0, p.cpu_table().max_level());
        let f_ratio = p.gpu_table().freq_hz(p.gpu_table().max_level()) / p.gpu_table().freq_hz(0);
        let measured = lo.compute / hi.compute;
        assert!(
            measured > 0.95 * f_ratio && measured <= f_ratio,
            "compute ratio {measured} vs frequency ratio {f_ratio}"
        );
    }

    #[test]
    fn memory_time_independent_of_gpu_frequency() {
        let p = Platform::agx();
        let l = relu_layer();
        let hi = p.layer_timing(&l, 1, p.gpu_table().max_level(), 0);
        let lo = p.layer_timing(&l, 1, 0, 0);
        assert_eq!(hi.memory, lo.memory);
    }

    #[test]
    fn conv_is_compute_bound_relu_memory_bound_at_max() {
        let p = Platform::agx();
        let max = p.gpu_table().max_level();
        let cmax = p.cpu_table().max_level();
        let conv = p.layer_timing(&conv_layer(), 8, max, cmax);
        assert!(
            conv.compute > conv.memory,
            "3x3 conv should be compute-bound"
        );
        let relu = p.layer_timing(&relu_layer(), 8, max, cmax);
        assert!(relu.memory > relu.compute, "relu should be memory-bound");
    }

    #[test]
    fn power_increases_with_frequency() {
        let p = Platform::agx();
        let l = conv_layer();
        let cmax = p.cpu_table().max_level();
        let t_hi = p.layer_timing(&l, 1, 13, cmax);
        let t_lo = p.layer_timing(&l, 1, 0, cmax);
        let p_hi = p.layer_power(&t_hi, 13, cmax);
        let p_lo = p.layer_power(&t_lo, 0, cmax);
        assert!(p_hi > 2.0 * p_lo, "power at max should dwarf power at min");
    }

    #[test]
    fn power_within_board_envelope() {
        // Full-tilt AGX should be in the 20-40 W class, TX2 in the 7-18 W class.
        for (p, lo, hi) in [(Platform::agx(), 15.0, 40.0), (Platform::tx2(), 6.0, 18.0)] {
            let l = conv_layer();
            let g = p.gpu_table().max_level();
            let c = p.cpu_table().max_level();
            let t = p.layer_timing(&l, 32, g, c);
            let watts = p.layer_power(&t, g, c);
            assert!(
                watts > lo && watts < hi,
                "{}: {watts:.1} W outside [{lo}, {hi}]",
                p.name()
            );
        }
    }

    #[test]
    fn energy_efficiency_peaks_below_max_for_memory_bound() {
        // For a memory-bound layer, energy at max frequency must exceed
        // energy at some lower level (the headroom PowerLens exploits).
        let p = Platform::agx();
        let l = relu_layer();
        let cmax = p.cpu_table().max_level();
        let e_max = p.layer_energy(&l, 8, p.gpu_table().max_level(), cmax);
        let e_best = (0..p.gpu_levels())
            .map(|g| p.layer_energy(&l, 8, g, cmax))
            .fold(f64::INFINITY, f64::min);
        assert!(
            e_best < e_max * 0.95,
            "no downclock headroom: {e_best} vs {e_max}"
        );
    }

    #[test]
    fn compute_bound_layer_prefers_higher_frequency_than_memory_bound() {
        let p = Platform::agx();
        let cmax = p.cpu_table().max_level();
        let best = |l: &Layer| -> usize {
            (0..p.gpu_levels())
                .min_by(|&a, &b| {
                    p.layer_energy(l, 8, a, cmax)
                        .partial_cmp(&p.layer_energy(l, 8, b, cmax))
                        .unwrap()
                })
                .unwrap()
        };
        assert!(best(&conv_layer()) > best(&relu_layer()));
    }

    #[test]
    fn launch_overhead_scales_with_cpu_frequency() {
        let p = Platform::tx2();
        let l = conv_layer();
        let fast = p.layer_timing(&l, 1, 5, p.cpu_table().max_level());
        let slow = p.layer_timing(&l, 1, 5, 0);
        assert!(slow.launch > 3.0 * fast.launch);
    }

    #[test]
    fn agx_faster_than_tx2() {
        let agx = Platform::agx();
        let tx2 = Platform::tx2();
        let g = zoo::resnet34();
        let time = |p: &Platform| -> f64 {
            let gl = p.gpu_table().max_level();
            let cl = p.cpu_table().max_level();
            g.layers()
                .iter()
                .map(|l| p.layer_timing(l, 8, gl, cl).total)
                .sum()
        };
        assert!(time(&agx) < time(&tx2));
    }

    #[test]
    fn util_in_unit_range() {
        let p = Platform::agx();
        for l in zoo::alexnet().layers() {
            let t = p.layer_timing(l, 4, 7, 3);
            assert!(
                (0.0..=1.0).contains(&t.gpu_util),
                "{}: {}",
                l.name,
                t.gpu_util
            );
        }
    }

    #[test]
    fn with_transition_cost_override() {
        let p = Platform::agx().with_dvfs_transition_cost(0.01);
        assert_eq!(p.dvfs_transition_cost(), 0.01);
    }

    #[test]
    fn sparsity_shrinks_compute_time_and_energy() {
        let p = Platform::agx();
        let cmax = p.cpu_table().max_level();
        let gmax = p.gpu_table().max_level();
        let dense = conv_layer();
        let sparse = dense.clone().with_sparsity(0.9);
        let t_dense = p.layer_timing(&dense, 8, gmax, cmax);
        let t_sparse = p.layer_timing(&sparse, 8, gmax, cmax);
        assert!(t_sparse.compute < t_dense.compute * 0.2);
        assert_eq!(t_sparse.memory, t_dense.memory);
        assert!(
            p.layer_energy(&sparse, 8, gmax, cmax) < p.layer_energy(&dense, 8, gmax, cmax),
            "skipped MACs must save energy"
        );
        // The envelope applies the same density, so it still bounds the
        // exact per-level values.
        let env = p.layer_envelope(&sparse, 8, cmax).unwrap();
        for g in 0..p.gpu_levels() {
            let e = p.layer_energy(&sparse, 8, g, cmax);
            assert!(env.energy.0 <= e && e <= env.energy.1);
        }
    }

    #[test]
    fn zero_sparsity_is_bit_identical_to_dense_model() {
        let p = Platform::agx();
        let cmax = p.cpu_table().max_level();
        let dense = conv_layer();
        let annotated = dense.clone().with_sparsity(0.0);
        for g in 0..p.gpu_levels() {
            assert_eq!(
                p.layer_timing(&dense, 8, g, cmax),
                p.layer_timing(&annotated, 8, g, cmax)
            );
            assert_eq!(
                p.layer_energy(&dense, 8, g, cmax).to_bits(),
                p.layer_energy(&annotated, 8, g, cmax).to_bits()
            );
        }
        assert_eq!(
            p.layer_envelope(&dense, 8, cmax),
            p.layer_envelope(&annotated, 8, cmax)
        );
    }

    #[test]
    fn default_op_efficiency_matches_kernel_efficiency() {
        let p = Platform::agx();
        let att = OpKind::Attention {
            embed_dim: 256,
            heads: 4,
        };
        assert_eq!(
            p.op_efficiency(&att).to_bits(),
            Platform::kernel_efficiency(&att).to_bits()
        );
    }

    #[test]
    fn layer_envelope_bounds_every_level() {
        let p = Platform::agx();
        let cl = p.cpu_table().max_level();
        for l in zoo::alexnet().layers() {
            let env = p.layer_envelope(l, 8, cl).unwrap();
            assert!(env.energy.0 <= env.energy.1, "{}", l.name);
            assert!(env.runtime.0 <= env.runtime.1);
            assert!(env.busy_util.0 <= env.busy_util.1);
            assert!((0.0..=1.0).contains(&env.busy_util.0));
            assert!((0.0..=1.0).contains(&env.busy_util.1));
            for g in 0..p.gpu_levels() {
                let e = p.layer_energy(l, 8, g, cl);
                let t = p.layer_timing(l, 8, g, cl).total;
                assert!(env.energy.0 <= e && e <= env.energy.1);
                assert!(env.runtime.0 <= t && t <= env.runtime.1);
            }
        }
    }
}
