//! Reproduces **Table 2**: energy-efficiency loss of the clustering
//! ablations relative to full PowerLens.
//!
//! * **P-R** — random block partitioning (same block count, random
//!   contiguous boundaries), frequencies still assigned by the trained
//!   decision model;
//! * **P-N** — no clustering: one decision-model frequency for the whole
//!   network.
//!
//! ```text
//! cargo run --release -p powerlens-bench --bin table2_ablation
//! ```

use powerlens::{ablation, PlanController, PowerLens, PowerLensConfig};
use powerlens_bench::{gain, paper_table2, rule, trained_models, MODEL_NAMES};
use powerlens_dnn::zoo;
use powerlens_platform::Platform;
use powerlens_sim::{run_taskflow, Controller, Engine, TaskSpec};

const RUNS: usize = 50;
const IMAGES_PER_RUN: usize = 48;
const PR_SEEDS: u64 = 5;

fn session_ee(platform: &Platform, graph: &powerlens_dnn::Graph, ctl: &mut dyn Controller) -> f64 {
    let engine = Engine::new(platform).with_batch(8).with_noise(7, 0.03);
    let tasks: Vec<TaskSpec<'_>> = (0..RUNS)
        .map(|_| TaskSpec {
            graph,
            images: IMAGES_PER_RUN,
        })
        .collect();
    run_taskflow(&engine, &tasks, ctl).energy_efficiency
}

fn main() {
    for platform in [Platform::tx2(), Platform::agx()] {
        let models = trained_models(&platform);
        let pl = PowerLens::with_models(&platform, PowerLensConfig::default(), models);
        let paper = paper_table2(platform.name());

        println!();
        println!(
            "Table 2 ({}): energy efficiency loss for different clustering strategies",
            platform.name().to_uppercase()
        );
        rule(78);
        println!(
            "{:<16} | {:>9} {:>9} | paper: {:>8} {:>8}",
            "model", "P-R", "P-N", "P-R", "P-N"
        );
        rule(78);

        let mut sums = [0.0f64; 2];
        for (i, name) in MODEL_NAMES.iter().enumerate() {
            let graph = zoo::by_name(name).expect("zoo model");
            let outcome = pl.plan(&graph).expect("trained plan");

            let ee_full = session_ee(
                &platform,
                &graph,
                &mut PlanController::new(outcome.plan.clone()),
            );

            // P-R averaged over several random partitions.
            let blocks = outcome.plan.num_blocks().max(2);
            let ee_pr: f64 = (0..PR_SEEDS)
                .map(|s| {
                    let plan = ablation::plan_random(&pl, &graph, blocks, s);
                    session_ee(&platform, &graph, &mut PlanController::new(plan))
                })
                .sum::<f64>()
                / PR_SEEDS as f64;

            let pn_plan = ablation::plan_no_clustering(&pl, &graph);
            let ee_pn = session_ee(&platform, &graph, &mut PlanController::new(pn_plan));

            let loss_pr = gain(ee_pr, ee_full);
            let loss_pn = gain(ee_pn, ee_full);
            sums[0] += loss_pr;
            sums[1] += loss_pn;
            let (_, p_pr, p_pn) = paper[i];
            println!(
                "{:<16} | {:>8.2}% {:>8.2}% | paper: {:>7.2}% {:>7.2}%",
                name,
                loss_pr * 100.0,
                loss_pn * 100.0,
                p_pr,
                p_pn
            );
        }
        rule(78);
        let n = MODEL_NAMES.len() as f64;
        println!(
            "{:<16} | {:>8.2}% {:>8.2}% | paper: {:>7.2}% {:>7.2}%",
            "Average",
            sums[0] / n * 100.0,
            sums[1] / n * 100.0,
            paper.iter().map(|r| r.1).sum::<f64>() / n,
            paper.iter().map(|r| r.2).sum::<f64>() / n
        );
    }
}
