//! Miniature versions of the paper's experiments, asserting the *shapes*
//! the full harness (crates/bench) reports: method ordering, ablation
//! signs, and overhead accounting.

use powerlens::{ablation, evaluate_plan, PlanController, PowerLens, PowerLensConfig};
use powerlens_dnn::zoo;
use powerlens_governors::{Bim, FpgCg, FpgG};
use powerlens_platform::{DvfsActuator, Platform};
use powerlens_sim::{run_taskflow, Controller, Engine, TaskSpec};

/// Long continuous session EE (the paper's 50-runs protocol, shortened).
fn session_ee(platform: &Platform, graph: &powerlens_dnn::Graph, ctl: &mut dyn Controller) -> f64 {
    let engine = Engine::new(platform).with_batch(8);
    let tasks: Vec<TaskSpec<'_>> = (0..20).map(|_| TaskSpec { graph, images: 48 }).collect();
    run_taskflow(&engine, &tasks, ctl).energy_efficiency
}

#[test]
fn table1_shape_method_ordering_on_resnet152() {
    for platform in [Platform::agx(), Platform::tx2()] {
        let g = zoo::resnet152();
        let pl = PowerLens::untrained(&platform, PowerLensConfig::default());
        let plan = pl.plan_oracle(&g).unwrap().plan;

        let ee_pl = session_ee(&platform, &g, &mut PlanController::new(plan));
        let ee_bim = session_ee(&platform, &g, &mut Bim::new(&platform));
        let ee_fpg_g = session_ee(&platform, &g, &mut FpgG::new(&platform));
        let ee_fpg_cg = session_ee(&platform, &g, &mut FpgCg::new(&platform));

        assert!(
            ee_pl > ee_fpg_cg && ee_fpg_cg > ee_fpg_g && ee_fpg_g > ee_bim,
            "{}: ordering violated: PL {ee_pl:.3}, FPG-CG {ee_fpg_cg:.3}, \
             FPG-G {ee_fpg_g:.3}, BiM {ee_bim:.3}",
            platform.name()
        );
    }
}

#[test]
fn fig5_shape_taskflow_energy_and_time() {
    // PowerLens: lowest energy & highest EE; BiM: fastest & most energy.
    let platform = Platform::agx();
    let names = ["alexnet", "resnet34", "vgg19"];
    let graphs: Vec<powerlens_dnn::Graph> =
        names.iter().map(|n| zoo::by_name(n).unwrap()).collect();
    let pl = PowerLens::untrained(&platform, PowerLensConfig::default());
    let mut multi = powerlens::MultiPlanController::new();
    for g in &graphs {
        multi.insert(g.name(), pl.plan_oracle(g).unwrap().plan);
    }
    let tasks: Vec<TaskSpec<'_>> = (0..12)
        .map(|i| TaskSpec {
            graph: &graphs[i % graphs.len()],
            images: 50,
        })
        .collect();
    let engine = Engine::new(&platform).with_batch(8);
    let r_pl = run_taskflow(&engine, &tasks, &mut multi);
    let r_bim = run_taskflow(&engine, &tasks, &mut Bim::new(&platform));
    let r_fpg = run_taskflow(&engine, &tasks, &mut FpgG::new(&platform));

    assert!(r_pl.total_energy < r_fpg.total_energy);
    assert!(r_pl.total_energy < r_bim.total_energy);
    assert!(r_pl.energy_efficiency > r_fpg.energy_efficiency);
    assert!(r_pl.energy_efficiency > r_bim.energy_efficiency);
    assert!(r_bim.total_time < r_pl.total_time, "BiM should be fastest");
}

#[test]
fn table2_shape_ablations_never_beat_full_pipeline_meaningfully() {
    let platform = Platform::agx();
    let pl = PowerLens::untrained(&platform, PowerLensConfig::default());
    for name in ["alexnet", "vgg19", "resnet152"] {
        let g = zoo::by_name(name).unwrap();
        let full = pl.plan_oracle(&g).unwrap();
        let ee_full = evaluate_plan(&platform, &g, &full.plan, 8, 48).energy_efficiency;
        let pn = ablation::plan_no_clustering(&pl, &g);
        let ee_pn = evaluate_plan(&platform, &g, &pn, 8, 48).energy_efficiency;
        let ee_pr: f64 = (0..4)
            .map(|s| {
                let plan = ablation::plan_random(&pl, &g, full.plan.num_blocks().max(2), s);
                evaluate_plan(&platform, &g, &plan, 8, 48).energy_efficiency
            })
            .sum::<f64>()
            / 4.0;
        assert!(ee_pn <= ee_full * 1.001, "{name}: P-N {ee_pn} vs {ee_full}");
        assert!(ee_pr <= ee_full * 1.001, "{name}: P-R {ee_pr} vs {ee_full}");
    }
}

#[test]
fn dvfs_overhead_measurement_matches_platform_constants() {
    // §3.3: 100 level changes; each pays the transition stall, and the
    // advertised settle latency reproduces the paper's ~50 ms figure.
    let platform = Platform::agx();
    let mut act = DvfsActuator::new(0, platform.dvfs_transition_cost(), platform.gpu_levels());
    for i in 0..100 {
        act.set_level((i % 2) + 1);
    }
    assert_eq!(act.num_switches(), 100);
    let avg_stall = act.total_overhead() / 100.0;
    assert!((avg_stall - platform.dvfs_transition_cost()).abs() < 1e-12);
    assert!((platform.dvfs_settle_latency() - 0.050).abs() < 1e-12);
}

#[test]
fn paper_observation_small_models_cluster_to_one_block() {
    // Table 1 observation ①: alexnet and mobilenet lack operators for
    // fine clustering; observation ③: ViT's repeated encoder collapses.
    let platform = Platform::agx();
    let pl = PowerLens::untrained(&platform, PowerLensConfig::default());
    for name in ["alexnet", "vit_base_16"] {
        let g = zoo::by_name(name).unwrap();
        let outcome = pl.plan_oracle(&g).unwrap();
        assert!(
            outcome.plan.num_blocks() <= 2,
            "{name}: expected <=2 blocks, got {}",
            outcome.plan.num_blocks()
        );
    }
}
