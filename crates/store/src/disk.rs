//! The on-disk tier: one JSON file per key, written atomically, read
//! defensively.
//!
//! Writes go to a `.tmp` sibling first and are moved into place with
//! `rename`, so a crash mid-write can never leave a half-entry under the
//! final name and concurrent writers of the same key settle on one complete
//! file. Opening a tier sweeps any `.tmp` files a crashed writer left
//! behind. Reads never trust the bytes: anything that fails to parse, or
//! whose recorded key disagrees with its file name, is *quarantined* —
//! renamed to `<name>.quarantine` (suffixed `.quarantine.1`, `.2`, … when
//! that name is taken, so repeat offenders never clobber earlier evidence)
//! — and reported as a miss.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use powerlens_obs as obs;

use crate::entry::StoredEntry;
use crate::key::CacheKey;

/// A cache directory holding one `<key-hex>.json` per entry.
#[derive(Debug, Clone)]
pub struct DiskTier {
    dir: PathBuf,
}

impl DiskTier {
    /// Opens (creating if needed) the cache directory, sweeping any stale
    /// `.tmp` files left by writers that crashed mid-write. A tmp file is
    /// garbage by construction — the rename that would have published it
    /// never happened — so removal is always safe.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures. Sweep failures (e.g. a tmp
    /// file vanishing concurrently) are ignored; the file was unreachable
    /// by any load path anyway.
    pub fn new(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let tier = DiskTier {
            dir: dir.to_path_buf(),
        };
        tier.sweep_stale_tmp();
        Ok(tier)
    }

    fn sweep_stale_tmp(&self) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut swept = 0u64;
        for entry in entries.flatten() {
            let path = entry.path();
            let is_tmp = path.extension().is_some_and(|e| e == "tmp");
            if is_tmp && path.is_file() && fs::remove_file(&path).is_ok() {
                swept += 1;
            }
        }
        if swept > 0 {
            obs::counter("store.tmp_swept", swept);
        }
    }

    /// The directory this tier stores entries under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an entry for `key` lives in.
    pub fn path_for(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// Loads the entry for `key`. Absent files return `None`; present but
    /// unreadable, unparsable, or mis-keyed files are quarantined and also
    /// return `None`.
    pub fn load(&self, key: CacheKey) -> Option<StoredEntry> {
        let path = self.path_for(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(_) => {
                self.quarantine(&path);
                return None;
            }
        };
        match serde_json::from_str::<StoredEntry>(&text) {
            Ok(entry) if entry.key == key.hex() => Some(entry),
            _ => {
                self.quarantine(&path);
                None
            }
        }
    }

    /// Persists an entry under its key (atomic tmp+rename).
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures.
    pub fn store(&self, key: CacheKey, entry: &StoredEntry) -> io::Result<()> {
        let json = serde_json::to_string_pretty(entry).map_err(io::Error::other)?;
        let tmp = self.dir.join(format!("{}.json.tmp", key.hex()));
        fs::write(&tmp, json)?;
        fs::rename(&tmp, self.path_for(key))
    }

    /// Quarantines the file a bad entry was read from. When the quarantine
    /// name is already taken (the same key went bad before), a numeric
    /// suffix is appended instead of overwriting the earlier evidence.
    /// Removal (rather than quarantine) of an already-vanished file is
    /// fine; other rename failures only cost a retry on the next load.
    pub fn quarantine(&self, path: &Path) {
        let base = {
            let mut t = path.as_os_str().to_owned();
            t.push(".quarantine");
            PathBuf::from(t)
        };
        let mut target = base.clone();
        let mut suffix = 0u32;
        while target.exists() {
            suffix += 1;
            if suffix > 10_000 {
                // Pathological collision storm; give up on preserving more
                // evidence and reuse the base name.
                target = base;
                break;
            }
            let mut t = base.as_os_str().to_owned();
            t.push(format!(".{suffix}"));
            target = PathBuf::from(t);
        }
        if fs::rename(path, &target).is_ok() {
            obs::counter("store.quarantined", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{StoredBlock, StoredPoint, StoredTimings, SCHEMA_VERSION};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("powerlens_store_disk_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry_for(key: CacheKey) -> StoredEntry {
        StoredEntry {
            schema_version: SCHEMA_VERSION,
            key: key.hex(),
            platform: "agx:g14:c14".into(),
            model: "sample".into(),
            graph_fingerprint: format!("{:016x}", 99),
            num_layers: 2,
            blocks: vec![StoredBlock { start: 0, end: 2 }],
            points: vec![StoredPoint {
                layer: 0,
                gpu_level: 1,
            }],
            cpu_level: 0,
            scheme_index: 0,
            timings: StoredTimings {
                feature_extraction_ns: 1,
                hyperparameter_prediction_ns: 2,
                clustering_ns: 3,
                decision_ns: 4,
            },
        }
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let tier = DiskTier::new(&dir).unwrap();
        let key = CacheKey(0xabcd);
        assert!(tier.load(key).is_none());
        let entry = entry_for(key);
        tier.store(key, &entry).unwrap();
        assert_eq!(tier.load(key).unwrap(), entry);
        // No stray tmp file left behind.
        assert!(!tier.dir().join(format!("{}.json.tmp", key.hex())).exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_file_is_quarantined_not_fatal() {
        let dir = temp_dir("corrupt");
        let tier = DiskTier::new(&dir).unwrap();
        let key = CacheKey(0x1234);
        fs::write(tier.path_for(key), "{ this is not json").unwrap();
        assert!(tier.load(key).is_none());
        assert!(!tier.path_for(key).exists(), "corrupt file moved aside");
        let quarantined = dir.join(format!("{}.json.quarantine", key.hex()));
        assert!(quarantined.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mis_keyed_file_is_quarantined() {
        let dir = temp_dir("miskey");
        let tier = DiskTier::new(&dir).unwrap();
        let key = CacheKey(0x10);
        // Valid JSON, but recorded under a different key: a renamed or
        // colliding file must not be served.
        tier.store(key, &entry_for(CacheKey(0x20))).unwrap();
        assert!(tier.load(key).is_none());
        assert!(!tier.path_for(key).exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_collisions_do_not_clobber_earlier_evidence() {
        let dir = temp_dir("collide");
        let tier = DiskTier::new(&dir).unwrap();
        let key = CacheKey(0x77);
        for round in 0..3 {
            fs::write(tier.path_for(key), format!("bad payload round {round}")).unwrap();
            assert!(tier.load(key).is_none());
        }
        let base = dir.join(format!("{}.json.quarantine", key.hex()));
        let s1 = dir.join(format!("{}.json.quarantine.1", key.hex()));
        let s2 = dir.join(format!("{}.json.quarantine.2", key.hex()));
        assert!(base.exists() && s1.exists() && s2.exists());
        // Each quarantine file preserved its own round's payload.
        assert_eq!(fs::read_to_string(&base).unwrap(), "bad payload round 0");
        assert_eq!(fs::read_to_string(&s2).unwrap(), "bad payload round 2");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_sweeps_stale_tmp_files() {
        let dir = temp_dir("sweep");
        fs::create_dir_all(&dir).unwrap();
        // Simulate crashed writers: tmp files written but never renamed.
        for i in 0..4 {
            fs::write(dir.join(format!("{i:016x}.json.tmp")), "half-written").unwrap();
        }
        let tier = DiskTier::new(&dir).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "stale tmp files must be swept on open"
        );
        // A healthy entry written after the sweep is untouched.
        let key = CacheKey(0x5a);
        tier.store(key, &entry_for(key)).unwrap();
        assert!(tier.load(key).is_some());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seeded_crash_injection_never_loses_published_entries() {
        // Reuse the fault layer's seeded stream to decide which writes
        // "crash" (tmp written, rename skipped). Published entries must
        // survive a reopen; crashed ones are swept, reported as misses,
        // and never served half-written.
        use powerlens_faults::stream_seed;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let dir = temp_dir("crashes");
        let tier = DiskTier::new(&dir).unwrap();
        let mut rng = StdRng::seed_from_u64(stream_seed(2024, "store-crash"));
        let mut published = Vec::new();
        let mut crashed = Vec::new();
        for i in 0..32u64 {
            let key = CacheKey(0x9000 + i);
            let entry = entry_for(key);
            if rng.gen_bool(0.3) {
                // Crash mid-write: the tmp file exists, the rename never ran.
                let json = serde_json::to_string_pretty(&entry).unwrap();
                fs::write(dir.join(format!("{}.json.tmp", key.hex())), json).unwrap();
                crashed.push(key);
            } else {
                tier.store(key, &entry).unwrap();
                published.push(key);
            }
        }
        assert!(!published.is_empty() && !crashed.is_empty());

        let reopened = DiskTier::new(&dir).unwrap();
        for key in &published {
            assert!(reopened.load(*key).is_some(), "published entry lost");
        }
        for key in &crashed {
            assert!(reopened.load(*key).is_none(), "crashed write must miss");
            assert!(
                !dir.join(format!("{}.json.tmp", key.hex())).exists(),
                "crashed tmp must be swept on reopen"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }
}
