use super::helpers::{classifier_head, conv_bn_act, imagenet, maxpool};
use crate::{ActKind, Graph, GraphBuilder, OpKind, PoolKind};

const GROWTH: usize = 32;

/// Pushes one DenseNet layer: BN → ReLU → 1x1 conv (4k) → BN → ReLU →
/// 3x3 conv (k) → concat onto the running feature map.
fn dense_layer(b: &mut GraphBuilder, prefix: &str) {
    let input_shape = b.current_shape();
    b.push(format!("{prefix}.bn1"), OpKind::BatchNorm);
    b.push(format!("{prefix}.relu1"), OpKind::Activation(ActKind::Relu));
    let in_ch = b.current_shape().channels();
    b.push(
        format!("{prefix}.conv1"),
        OpKind::Conv2d {
            in_ch,
            out_ch: 4 * GROWTH,
            kernel: 1,
            stride: 1,
            padding: 0,
            groups: 1,
        },
    );
    b.push(format!("{prefix}.bn2"), OpKind::BatchNorm);
    b.push(format!("{prefix}.relu2"), OpKind::Activation(ActKind::Relu));
    let new_feat = b.push(
        format!("{prefix}.conv2"),
        OpKind::Conv2d {
            in_ch: 4 * GROWTH,
            out_ch: GROWTH,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        },
    );
    // Concatenate the new k features onto the block input.
    b.set_current_shape(input_shape);
    let cat = b.push(format!("{prefix}.cat"), OpKind::Concat { extra_ch: GROWTH });
    b.add_skip(new_feat, cat);
}

/// Pushes a transition: BN → ReLU → 1x1 conv halving channels → 2x2 avg-pool.
fn transition(b: &mut GraphBuilder, prefix: &str) {
    let ch = b.current_shape().channels();
    b.push(format!("{prefix}.bn"), OpKind::BatchNorm);
    b.push(format!("{prefix}.relu"), OpKind::Activation(ActKind::Relu));
    b.push(
        format!("{prefix}.conv"),
        OpKind::Conv2d {
            in_ch: ch,
            out_ch: ch / 2,
            kernel: 1,
            stride: 1,
            padding: 0,
            groups: 1,
        },
    );
    b.push(
        format!("{prefix}.pool"),
        OpKind::Pool {
            kind: PoolKind::Avg,
            kernel: 2,
            stride: 2,
        },
    );
}

/// DenseNet-201 (torchvision `densenet201`): dense blocks [6, 12, 48, 32]
/// with growth rate 32, ~4.3 GFLOPs / ~20 M params. The deepest zoo model
/// (~700 operators).
pub fn densenet201() -> Graph {
    let mut b = GraphBuilder::new("densenet201", imagenet());
    conv_bn_act(&mut b, "stem", 64, 7, 2, 3, 1, ActKind::Relu);
    maxpool(&mut b, "stem", 3, 2);

    let block_sizes = [6usize, 12, 48, 32];
    for (bi, &n) in block_sizes.iter().enumerate() {
        for li in 0..n {
            dense_layer(&mut b, &format!("denseblock{}.layer{li}", bi + 1));
        }
        if bi + 1 < block_sizes.len() {
            transition(&mut b, &format!("transition{}", bi + 1));
        }
    }
    b.push("final.bn", OpKind::BatchNorm);
    b.push("final.relu", OpKind::Activation(ActKind::Relu));
    classifier_head(&mut b, 1000);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densenet_channel_growth() {
        let g = densenet201();
        // After block 1 (6 layers): 64 + 6*32 = 256; transition halves to 128.
        let t1_conv = g
            .layers()
            .iter()
            .find(|l| l.name == "transition1.conv")
            .unwrap();
        assert_eq!(t1_conv.output_shape.channels(), 128);
        // Final channels: block4 input 896 hmm — check against known 1920.
        let final_bn = g.layers().iter().find(|l| l.name == "final.bn").unwrap();
        assert_eq!(final_bn.input_shape.channels(), 1920);
    }

    #[test]
    fn densenet_is_very_deep() {
        assert!(densenet201().num_layers() > 600);
    }
}
