//! Criterion micro-benchmarks: the inference simulator (engine throughput
//! and the per-layer cost queries every experiment relies on).

use criterion::{criterion_group, criterion_main, Criterion};
use powerlens_dnn::zoo;
use powerlens_platform::Platform;
use powerlens_sim::{Engine, StaticController};
use std::hint::black_box;

fn bench_layer_timing(c: &mut Criterion) {
    let p = Platform::agx();
    let g = zoo::resnet152();
    let layer = &g.layers()[40];
    c.bench_function("layer_timing", |b| {
        b.iter(|| p.layer_timing(black_box(layer), 8, 7, 7))
    });
}

fn bench_engine_run(c: &mut Criterion) {
    let p = Platform::agx();
    let mut group = c.benchmark_group("engine_run_8_images");
    group.sample_size(20);
    for name in ["alexnet", "resnet152"] {
        let g = zoo::by_name(name).unwrap();
        let engine = Engine::new(&p).with_batch(8);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut ctl = StaticController::new(7, 7);
                engine.run(black_box(&g), &mut ctl, 8)
            })
        });
    }
    group.finish();
}

fn bench_level_sweep(c: &mut Criterion) {
    let p = Platform::agx();
    let g = zoo::alexnet();
    let engine = Engine::new(&p).with_batch(8);
    let mut group = c.benchmark_group("sweep_gpu_levels");
    group.sample_size(10);
    group.bench_function("alexnet", |b| {
        b.iter(|| engine.sweep_gpu_levels(black_box(&g), 8))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_layer_timing,
    bench_engine_run,
    bench_level_sweep
);
criterion_main!(benches);
