//! Governor coverage asserted through the `powerlens-lint` plan pack:
//! degenerate plans, single-block views, and (via a recording shim around
//! the reactive baselines) out-of-range frequency requests.

use powerlens_cluster::{PowerBlock, PowerView};
use powerlens_dnn::{zoo, Graph, LayerId};
use powerlens_governors::{oracle, Bim, FpgCg, FpgG};
use powerlens_lint::{lint_plan, lint_view, LintConfig, PlanContext};
use powerlens_platform::{
    FreqLevel, InstrumentationPlan, InstrumentationPoint, Platform, Telemetry,
};
use powerlens_sim::{Controller, Engine, FreqRequest};

fn plan_report(plan: &InstrumentationPlan, platform: &Platform) -> powerlens_lint::LintReport {
    lint_plan(
        &PlanContext {
            plan,
            platform,
            view: None,
            graph: None,
            oracle: None,
        },
        &LintConfig::default(),
    )
}

#[test]
fn empty_plan_fires_pl201() {
    let report = plan_report(
        &InstrumentationPlan::from_points_unchecked(vec![], 0),
        &Platform::agx(),
    );
    assert!(report.fired("PL201"));
    assert!(report.has_errors());
}

#[test]
fn out_of_range_levels_fire_pl203_and_pl204() {
    // AGX exposes 14 GPU levels, TX2 only 13: level 13 is valid on one
    // board and an error on the other — exactly the mistake PL203 guards.
    let agx = Platform::agx();
    let tx2 = Platform::tx2();
    let plan = InstrumentationPlan::new(
        vec![InstrumentationPoint {
            layer: 0,
            gpu_level: 13,
        }],
        0,
    );
    assert!(!plan_report(&plan, &agx).fired("PL203"));
    let report = plan_report(&plan, &tx2);
    assert!(report.fired("PL203"), "{:?}", report.diagnostics);

    let bad_cpu = InstrumentationPlan::new(
        vec![InstrumentationPoint {
            layer: 0,
            gpu_level: 0,
        }],
        tx2.cpu_levels() + 5,
    );
    assert!(plan_report(&bad_cpu, &tx2).fired("PL204"));
}

#[test]
fn single_block_view_with_oracle_plan_lints_clean() {
    // The degenerate one-block view (whole network at one frequency) is a
    // legal PowerLens output; the oracle's pick for it must satisfy the
    // whole plan pack, including the PL209 self-cross-check.
    let agx = Platform::agx();
    let g = zoo::alexnet();
    let view = PowerView::new(vec![PowerBlock {
        start: 0,
        end: g.num_layers(),
    }]);
    let config = LintConfig::default();
    let vr = lint_view(&view, Some(&g), &config);
    assert!(!vr.has_errors(), "{:?}", vr.diagnostics);

    let best = |lo: usize, hi: usize| {
        oracle::best_level_for_range(&agx, &g, lo, hi, 1, oracle::DEFAULT_SLACK)
    };
    let plan = InstrumentationPlan::new(
        vec![InstrumentationPoint {
            layer: 0,
            gpu_level: best(0, g.num_layers()),
        }],
        agx.cpu_levels() - 1,
    );
    let report = lint_plan(
        &PlanContext {
            plan: &plan,
            platform: &agx,
            view: Some(&view),
            graph: Some(&g),
            oracle: Some(&best),
        },
        &config,
    );
    assert!(!report.has_errors(), "{:?}", report.diagnostics);
    assert!(!report.fired("PL209"));
}

/// Wraps a reactive controller and transcribes its first-batch frequency
/// requests into instrumentation points, so the trajectory can be linted
/// like a proactive plan.
struct Recorder {
    inner: Box<dyn Controller>,
    points: Vec<InstrumentationPoint>,
    cpu: FreqLevel,
    last_layer: Option<LayerId>,
    done: bool,
}

impl Recorder {
    fn new(inner: Box<dyn Controller>) -> Self {
        Recorder {
            inner,
            points: Vec::new(),
            cpu: 0,
            last_layer: None,
            done: false,
        }
    }

    fn into_plan(self) -> InstrumentationPlan {
        InstrumentationPlan::from_points_unchecked(self.points, self.cpu)
    }
}

impl Controller for Recorder {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_task_start(&mut self, graph: &Graph) {
        self.inner.on_task_start(graph);
    }

    fn before_layer(
        &mut self,
        graph: &Graph,
        layer: LayerId,
        telemetry: &Telemetry,
        gpu_level: FreqLevel,
        cpu_level: FreqLevel,
    ) -> FreqRequest {
        let req = self
            .inner
            .before_layer(graph, layer, telemetry, gpu_level, cpu_level);
        // Record the first batch only: a second pass over the layers would
        // produce non-ascending points (which is what PL202 rejects).
        if self.last_layer.is_some_and(|prev| layer <= prev) {
            self.done = true;
        }
        self.last_layer = Some(layer);
        if !self.done {
            let level = req.gpu.unwrap_or(gpu_level);
            if self.points.is_empty() || self.points.last().unwrap().gpu_level != level {
                self.points.push(InstrumentationPoint {
                    layer,
                    gpu_level: level,
                });
            }
            self.cpu = req.cpu.unwrap_or(cpu_level);
        }
        req
    }
}

#[test]
fn reactive_governor_trajectories_stay_in_range() {
    // BiM / FPG-G / FPG-CG must only ever request levels the board exposes;
    // linting their recorded first-batch trajectory as a plan proves it
    // (PL202 ordering, PL203 GPU range, PL204 CPU range, PL208 coverage).
    let platform = Platform::tx2();
    let g = zoo::resnet34();
    let engine = Engine::new(&platform).with_batch(4);
    let recorders: Vec<(&str, Recorder)> = vec![
        ("bim", Recorder::new(Box::new(Bim::new(&platform)))),
        ("fpg-g", Recorder::new(Box::new(FpgG::new(&platform)))),
        ("fpg-cg", Recorder::new(Box::new(FpgCg::new(&platform)))),
    ];
    for (name, mut rec) in recorders {
        engine.run(&g, &mut rec, 8);
        let plan = rec.into_plan();
        assert!(plan.num_blocks() >= 1, "{name} recorded no points");
        let report = plan_report(&plan, &platform);
        assert!(!report.has_errors(), "{name}: {:?}", report.diagnostics);
    }
}
