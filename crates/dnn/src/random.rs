//! Random DNN generator — the substrate of the paper's dataset generator
//! (§2.2: "uses a DNN generator to produce a large variety of neural networks
//! by randomly combining features mentioned in section 2.1.2").
//!
//! Generated networks mix compute-intensive convolution stages, memory-bound
//! depthwise stages, transformer encoder stacks and large linear classifiers,
//! so the labelled datasets cover the whole space of power behaviours the
//! prediction models must generalize over.
//!
//! # Example
//!
//! ```
//! use powerlens_dnn::random::{RandomDnnConfig, generate};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = generate(&RandomDnnConfig::default(), &mut rng);
//! assert!(g.num_layers() >= 4);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ActKind, Graph, GraphBuilder, OpKind, PoolKind, TensorShape};

/// Tunable bounds for the random generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomDnnConfig {
    /// Minimum number of body stages.
    pub min_stages: usize,
    /// Maximum number of body stages (inclusive).
    pub max_stages: usize,
    /// Maximum blocks per stage (inclusive).
    pub max_blocks_per_stage: usize,
    /// Candidate input resolutions (square).
    pub resolutions: Vec<usize>,
    /// Probability of generating a transformer-style network.
    pub transformer_prob: f64,
}

impl Default for RandomDnnConfig {
    fn default() -> Self {
        RandomDnnConfig {
            min_stages: 2,
            max_stages: 5,
            max_blocks_per_stage: 6,
            resolutions: vec![96, 128, 160, 192, 224],
            transformer_prob: 0.15,
        }
    }
}

/// Generates one random network under `cfg` using the supplied RNG.
pub fn generate<R: Rng + ?Sized>(cfg: &RandomDnnConfig, rng: &mut R) -> Graph {
    if rng.gen_bool(cfg.transformer_prob) {
        random_transformer(cfg, rng)
    } else {
        random_cnn(cfg, rng)
    }
}

/// Generates `count` networks from a deterministic seed.
pub fn generate_batch(cfg: &RandomDnnConfig, seed: u64, count: usize) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| generate(cfg, &mut rng)).collect()
}

fn pick<R: Rng + ?Sized, T: Copy>(rng: &mut R, options: &[T]) -> T {
    options[rng.gen_range(0..options.len())]
}

fn random_cnn<R: Rng + ?Sized>(cfg: &RandomDnnConfig, rng: &mut R) -> Graph {
    let res = pick(rng, &cfg.resolutions);
    let mut b = GraphBuilder::new("random_cnn", TensorShape::chw(3, res, res));

    // Stem.
    let stem_w = pick(rng, &[16usize, 32, 64]);
    let stem_k = pick(rng, &[3usize, 5, 7]);
    push_conv_bn_act(
        &mut b,
        "stem",
        stem_w,
        stem_k,
        2,
        stem_k / 2,
        1,
        ActKind::Relu,
    );
    if rng.gen_bool(0.5) {
        b.push(
            "stem.pool",
            OpKind::Pool {
                kind: PoolKind::Max,
                kernel: 3,
                stride: 2,
            },
        );
    }

    let stages = rng.gen_range(cfg.min_stages..=cfg.max_stages);
    let mut width = stem_w;
    for s in 0..stages {
        width = (width * 2).min(1024);
        let blocks = rng.gen_range(1..=cfg.max_blocks_per_stage);
        let style = rng.gen_range(0..4);
        for i in 0..blocks {
            let stride = if i == 0 { 2 } else { 1 };
            let prefix = format!("s{s}.b{i}");
            // Never stride below 2x2 spatial.
            let (h, _) = b.current_shape().spatial();
            let stride = if h <= 2 { 1 } else { stride };
            match style {
                0 => plain_block(&mut b, &prefix, width, stride, rng),
                1 => residual_block(&mut b, &prefix, width, stride),
                2 => bottleneck_block(&mut b, &prefix, width, stride, rng),
                _ => inverted_block(&mut b, &prefix, width, stride, rng),
            }
        }
    }

    // Head: sometimes a heavy MLP classifier (AlexNet/VGG style), otherwise
    // the modern pooled head.
    if rng.gen_bool(0.3) {
        b.push(
            "head.pool",
            OpKind::Pool {
                kind: PoolKind::GlobalAvg,
                kernel: 0,
                stride: 0,
            },
        );
        b.push("head.flatten", OpKind::Flatten);
        let mut feats = b.current_shape().numel();
        let hidden = pick(rng, &[1024usize, 2048, 4096]);
        for i in 0..rng.gen_range(1..=2) {
            b.push(
                format!("head.fc{i}"),
                OpKind::Linear {
                    in_features: feats,
                    out_features: hidden,
                },
            );
            b.push(format!("head.act{i}"), OpKind::Activation(ActKind::Relu));
            feats = hidden;
        }
        b.push(
            "head.out",
            OpKind::Linear {
                in_features: feats,
                out_features: 1000,
            },
        );
    } else {
        b.push(
            "head.pool",
            OpKind::Pool {
                kind: PoolKind::GlobalAvg,
                kernel: 0,
                stride: 0,
            },
        );
        b.push("head.flatten", OpKind::Flatten);
        let feats = b.current_shape().numel();
        b.push(
            "head.out",
            OpKind::Linear {
                in_features: feats,
                out_features: 1000,
            },
        );
    }
    b.finish()
}

fn random_transformer<R: Rng + ?Sized>(cfg: &RandomDnnConfig, rng: &mut R) -> Graph {
    let res = pick(rng, &cfg.resolutions);
    let dim = pick(rng, &[192usize, 384, 576, 768]);
    let heads = dim / 64;
    let patch = pick(rng, &[8usize, 16, 32]);
    let depth = rng.gen_range(4..=12);

    let mut b = GraphBuilder::new("random_vit", TensorShape::chw(3, res, res));
    b.push(
        "patch_embed",
        OpKind::PatchEmbed {
            in_ch: 3,
            embed_dim: dim,
            patch,
            extra_tokens: 1,
        },
    );
    for i in 0..depth {
        let pre = b.next_id() - 1;
        b.push(format!("enc{i}.ln1"), OpKind::LayerNorm);
        b.push(
            format!("enc{i}.attn"),
            OpKind::Attention {
                embed_dim: dim,
                heads,
            },
        );
        let add1 = b.push(format!("enc{i}.add1"), OpKind::Add);
        b.add_skip(pre, add1);
        b.push(format!("enc{i}.ln2"), OpKind::LayerNorm);
        b.push(
            format!("enc{i}.fc1"),
            OpKind::Linear {
                in_features: dim,
                out_features: 4 * dim,
            },
        );
        b.push(format!("enc{i}.gelu"), OpKind::Activation(ActKind::Gelu));
        b.push(
            format!("enc{i}.fc2"),
            OpKind::Linear {
                in_features: 4 * dim,
                out_features: dim,
            },
        );
        let add2 = b.push(format!("enc{i}.add2"), OpKind::Add);
        b.add_skip(add1, add2);
    }
    b.push("final.ln", OpKind::LayerNorm);
    b.set_current_shape(TensorShape::flat(dim));
    b.push(
        "head",
        OpKind::Linear {
            in_features: dim,
            out_features: 1000,
        },
    );
    b.finish()
}

#[allow(clippy::too_many_arguments)]
fn push_conv_bn_act(
    b: &mut GraphBuilder,
    prefix: &str,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    groups: usize,
    act: ActKind,
) -> usize {
    let in_ch = b.current_shape().channels();
    b.push(
        format!("{prefix}.conv"),
        OpKind::Conv2d {
            in_ch,
            out_ch,
            kernel,
            stride,
            padding,
            groups,
        },
    );
    b.push(format!("{prefix}.bn"), OpKind::BatchNorm);
    b.push(format!("{prefix}.act"), OpKind::Activation(act))
}

fn plain_block<R: Rng + ?Sized>(
    b: &mut GraphBuilder,
    prefix: &str,
    width: usize,
    stride: usize,
    rng: &mut R,
) {
    let k = pick(rng, &[3usize, 5]);
    push_conv_bn_act(b, prefix, width, k, stride, k / 2, 1, ActKind::Relu);
}

fn residual_block(b: &mut GraphBuilder, prefix: &str, width: usize, stride: usize) {
    let input_shape = b.current_shape();
    let needs_proj = stride != 1 || input_shape.channels() != width;
    push_conv_bn_act(
        b,
        &format!("{prefix}.1"),
        width,
        3,
        stride,
        1,
        1,
        ActKind::Relu,
    );
    let in_ch = b.current_shape().channels();
    b.push(
        format!("{prefix}.2.conv"),
        OpKind::Conv2d {
            in_ch,
            out_ch: width,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        },
    );
    let main_out = b.push(format!("{prefix}.2.bn"), OpKind::BatchNorm);
    if needs_proj {
        b.set_current_shape(input_shape);
        let in_ch = input_shape.channels();
        b.push(
            format!("{prefix}.proj.conv"),
            OpKind::Conv2d {
                in_ch,
                out_ch: width,
                kernel: 1,
                stride,
                padding: 0,
                groups: 1,
            },
        );
        let proj = b.push(format!("{prefix}.proj.bn"), OpKind::BatchNorm);
        let add = b.push(format!("{prefix}.add"), OpKind::Add);
        b.add_skip(main_out, add);
        b.add_skip(proj, add);
    } else {
        let add = b.push(format!("{prefix}.add"), OpKind::Add);
        b.add_skip(main_out, add);
    }
    b.push(format!("{prefix}.relu"), OpKind::Activation(ActKind::Relu));
}

fn bottleneck_block<R: Rng + ?Sized>(
    b: &mut GraphBuilder,
    prefix: &str,
    width: usize,
    stride: usize,
    rng: &mut R,
) {
    let input_shape = b.current_shape();
    let mid = (width / 4).max(8);
    let groups = if rng.gen_bool(0.3) && mid.is_multiple_of(32) {
        32
    } else {
        1
    };
    push_conv_bn_act(b, &format!("{prefix}.1"), mid, 1, 1, 0, 1, ActKind::Relu);
    push_conv_bn_act(
        b,
        &format!("{prefix}.2"),
        mid,
        3,
        stride,
        1,
        groups,
        ActKind::Relu,
    );
    let in_ch = b.current_shape().channels();
    b.push(
        format!("{prefix}.3.conv"),
        OpKind::Conv2d {
            in_ch,
            out_ch: width,
            kernel: 1,
            stride: 1,
            padding: 0,
            groups: 1,
        },
    );
    let main_out = b.push(format!("{prefix}.3.bn"), OpKind::BatchNorm);
    let needs_proj = stride != 1 || input_shape.channels() != width;
    if needs_proj {
        b.set_current_shape(input_shape);
        let in_ch = input_shape.channels();
        b.push(
            format!("{prefix}.proj.conv"),
            OpKind::Conv2d {
                in_ch,
                out_ch: width,
                kernel: 1,
                stride,
                padding: 0,
                groups: 1,
            },
        );
        let proj = b.push(format!("{prefix}.proj.bn"), OpKind::BatchNorm);
        let add = b.push(format!("{prefix}.add"), OpKind::Add);
        b.add_skip(main_out, add);
        b.add_skip(proj, add);
    } else {
        let add = b.push(format!("{prefix}.add"), OpKind::Add);
        b.add_skip(main_out, add);
    }
    b.push(format!("{prefix}.relu"), OpKind::Activation(ActKind::Relu));
}

fn inverted_block<R: Rng + ?Sized>(
    b: &mut GraphBuilder,
    prefix: &str,
    width: usize,
    stride: usize,
    rng: &mut R,
) {
    let in_ch = b.current_shape().channels();
    let exp = in_ch * pick(rng, &[2usize, 4, 6]);
    let k = pick(rng, &[3usize, 5]);
    push_conv_bn_act(
        b,
        &format!("{prefix}.expand"),
        exp,
        1,
        1,
        0,
        1,
        ActKind::HardSwish,
    );
    push_conv_bn_act(
        b,
        &format!("{prefix}.dw"),
        exp,
        k,
        stride,
        k / 2,
        exp,
        ActKind::HardSwish,
    );
    // Squeeze-excitation, as in MobileNetV3 / RegNetY bodies.
    if rng.gen_bool(0.5) {
        let shape = b.current_shape();
        b.push(
            format!("{prefix}.se.pool"),
            OpKind::Pool {
                kind: PoolKind::GlobalAvg,
                kernel: 0,
                stride: 0,
            },
        );
        b.push(
            format!("{prefix}.se.fc1"),
            OpKind::Conv2d {
                in_ch: exp,
                out_ch: (exp / 4).max(8),
                kernel: 1,
                stride: 1,
                padding: 0,
                groups: 1,
            },
        );
        b.push(
            format!("{prefix}.se.relu"),
            OpKind::Activation(ActKind::Relu),
        );
        b.push(
            format!("{prefix}.se.fc2"),
            OpKind::Conv2d {
                in_ch: (exp / 4).max(8),
                out_ch: exp,
                kernel: 1,
                stride: 1,
                padding: 0,
                groups: 1,
            },
        );
        b.push(
            format!("{prefix}.se.gate"),
            OpKind::Activation(ActKind::Sigmoid),
        );
        b.set_current_shape(shape);
        b.push(format!("{prefix}.se.scale"), OpKind::Add);
    }
    b.push(
        format!("{prefix}.project.conv"),
        OpKind::Conv2d {
            in_ch: exp,
            out_ch: width,
            kernel: 1,
            stride: 1,
            padding: 0,
            groups: 1,
        },
    );
    b.push(format!("{prefix}.project.bn"), OpKind::BatchNorm);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = RandomDnnConfig::default();
        let a = generate_batch(&cfg, 42, 5);
        let b = generate_batch(&cfg, 42, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandomDnnConfig::default();
        let a = generate_batch(&cfg, 1, 3);
        let b = generate_batch(&cfg, 2, 3);
        assert_ne!(a, b);
    }

    #[test]
    fn generated_networks_are_wellformed() {
        let cfg = RandomDnnConfig::default();
        for g in generate_batch(&cfg, 7, 50) {
            assert!(g.num_layers() >= 4, "{} too small", g.name());
            let s = g.stats();
            assert!(s.total_flops > 0.0);
            assert!(s.total_memory_bytes > 0.0);
            assert!(s.total_flops.is_finite());
            // Shapes thread correctly (output of each layer is input of next,
            // except after explicit branch points, which builders manage).
            assert_eq!(g.output_shape(), TensorShape::flat(1000));
        }
    }

    #[test]
    fn transformer_prob_one_yields_vits() {
        let cfg = RandomDnnConfig {
            transformer_prob: 1.0,
            ..RandomDnnConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let g = generate(&cfg, &mut rng);
        assert_eq!(g.name(), "random_vit");
        assert!(g
            .layers()
            .iter()
            .any(|l| matches!(l.op, OpKind::Attention { .. })));
    }

    #[test]
    fn coverage_of_block_styles() {
        // Over many samples we should see depthwise convs, grouped convs,
        // residual adds and transformer attention at least once each.
        let cfg = RandomDnnConfig::default();
        let graphs = generate_batch(&cfg, 11, 80);
        let mut saw_dw = false;
        let mut saw_add = false;
        let mut saw_attn = false;
        for g in &graphs {
            for l in g.layers() {
                match l.op {
                    OpKind::Conv2d { groups, in_ch, .. } if groups == in_ch && in_ch > 1 => {
                        saw_dw = true
                    }
                    OpKind::Add => saw_add = true,
                    OpKind::Attention { .. } => saw_attn = true,
                    _ => {}
                }
            }
        }
        assert!(saw_dw && saw_add && saw_attn);
    }
}
