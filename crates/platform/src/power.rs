/// CMOS power model for one clock domain:
/// `P = P_idle + C_eff · V² · f · activity`.
///
/// `C_eff` (effective switched capacitance) is calibrated per domain so that
/// full activity at the maximum operating point lands on the board's
/// published power envelope.
///
/// # Example
///
/// ```
/// use powerlens_platform::PowerDomainModel;
///
/// let m = PowerDomainModel::new(1.0, 1.2e-8);
/// let idle = m.power(1.0, 1.0e9, 0.0);
/// let busy = m.power(1.0, 1.0e9, 1.0);
/// assert!(busy > idle);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerDomainModel {
    /// Static/idle power of the domain in watts.
    pub idle_w: f64,
    /// Effective switched capacitance (W / (V² · Hz)).
    pub c_eff: f64,
}

impl PowerDomainModel {
    /// Creates a domain model from its idle power and effective capacitance.
    pub fn new(idle_w: f64, c_eff: f64) -> Self {
        PowerDomainModel { idle_w, c_eff }
    }

    /// Instantaneous power in watts at voltage `v`, frequency `f_hz`, and
    /// activity factor `activity` in `[0, 1]`.
    pub fn power(&self, v: f64, f_hz: f64, activity: f64) -> f64 {
        self.idle_w + self.c_eff * v * v * f_hz * activity.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_scales_quadratically_with_voltage() {
        let m = PowerDomainModel::new(0.0, 1e-9);
        let p1 = m.power(0.6, 1e9, 1.0);
        let p2 = m.power(1.2, 1e9, 1.0);
        assert!((p2 / p1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn power_linear_in_frequency_and_activity() {
        let m = PowerDomainModel::new(0.0, 1e-9);
        assert!((m.power(1.0, 2e9, 1.0) / m.power(1.0, 1e9, 1.0) - 2.0).abs() < 1e-9);
        assert!((m.power(1.0, 1e9, 0.5) / m.power(1.0, 1e9, 1.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn activity_is_clamped() {
        let m = PowerDomainModel::new(1.0, 1e-9);
        assert_eq!(m.power(1.0, 1e9, -1.0), 1.0);
        assert_eq!(m.power(1.0, 1e9, 2.0), m.power(1.0, 1e9, 1.0));
    }
}
