//! Graceful-degradation sweep: under a seeded 20 % DVFS switch-failure
//! rate, `Degraded(plan -> BiM)` must complete every zoo model without
//! panicking, actually trip its fallback somewhere in the sweep, and keep
//! energy efficiency within a floor of BiM running under the *same*
//! faults (falling back must not be worse than having run the reactive
//! governor from the start, modulo the pre-trip transient).

use powerlens_dnn::zoo;
use powerlens_faults::FaultPlan;
use powerlens_governors::{oracle, Bim};
use powerlens_platform::Platform;
use powerlens_sim::{Degraded, Engine, InstrumentationPlan, InstrumentationPoint, PlanController};

/// EE floor relative to BiM under identical faults. The wrapper spends its
/// pre-trip phase open-loop at the (possibly wrong) planned levels, so a
/// small deficit is expected; a large one means degradation is broken.
const EE_FLOOR: f64 = 0.9;

fn plan_for(p: &Platform, g: &powerlens_dnn::Graph) -> InstrumentationPlan {
    let n = g.num_layers();
    let best = oracle::best_level_for_range(p, g, 0, n, 4, f64::INFINITY);
    InstrumentationPlan::new(
        vec![InstrumentationPoint {
            layer: 0,
            gpu_level: best,
        }],
        p.cpu_table().max_level(),
    )
}

#[test]
fn degraded_survives_twenty_percent_switch_failures_across_the_zoo() {
    let p = Platform::agx();
    let base = FaultPlan::parse("switch_fail=0.2,retries=0").unwrap();

    let mut total_fallbacks = 0;
    let mut total_injected = 0;
    for (i, (name, build)) in zoo::all_models().into_iter().enumerate() {
        let g = build();
        // Distinct seed per model: a fresh session replays the same trace,
        // so reusing one seed would give every model the same first draw.
        let engine = Engine::new(&p)
            .with_batch(4)
            .with_faults(base.clone().with_seed(2000 + i as u64));
        let mut ctl = Degraded::new(PlanController::new(plan_for(&p, &g)), Bim::new(&p))
            .with_failure_threshold(1);
        let r = engine.run(&g, &mut ctl, 16);
        assert!(r.total_time > 0.0, "{name}: run must complete");
        assert!(r.energy_efficiency > 0.0, "{name}: EE must be positive");
        // A model whose plan matches the boot levels issues no switch
        // requests at all, so injection is asserted over the whole sweep.
        total_injected += r.faults_injected;
        total_fallbacks += ctl.num_fallbacks();

        let mut bim = Bim::new(&p);
        let r_bim = engine.run(&g, &mut bim, 8);
        assert!(
            r.energy_efficiency >= EE_FLOOR * r_bim.energy_efficiency,
            "{name}: degraded EE {:.4} fell below {EE_FLOOR} x BiM EE {:.4}",
            r.energy_efficiency,
            r_bim.energy_efficiency
        );
    }
    assert!(total_injected > 0, "the sweep must inject faults");
    assert!(
        total_fallbacks > 0,
        "a 20% failure rate must trip the fallback somewhere in the zoo"
    );
}

#[test]
fn degraded_trips_under_total_switch_blackout() {
    // With every switch failing, the plan can never land its preset and
    // the wrapper must hand over to BiM almost immediately.
    let p = Platform::tx2();
    let faults = FaultPlan::parse("switch_fail=1,retries=0")
        .unwrap()
        .with_seed(7);
    let engine = Engine::new(&p).with_batch(2).with_faults(faults);
    let g = zoo::alexnet();
    let mut ctl = Degraded::new(PlanController::new(plan_for(&p, &g)), Bim::new(&p))
        .with_failure_threshold(2);
    let r = engine.run(&g, &mut ctl, 6);
    assert!(ctl.fell_back(), "blackout must trip the fallback");
    assert!(r.num_failed_switches > 0);
    assert!(r.total_time > 0.0);
}

#[test]
fn sensor_dropout_alone_trips_the_staleness_detector() {
    let p = Platform::agx();
    // Heavy dropout, no switch failures: only the staleness path can trip.
    let faults = FaultPlan::parse("drop=0.95").unwrap().with_seed(11);
    let engine = Engine::new(&p).with_batch(8).with_faults(faults);
    let g = zoo::vgg19();
    let mut ctl =
        Degraded::new(PlanController::new(plan_for(&p, &g)), Bim::new(&p)).with_stale_window(0.2);
    let r = engine.run(&g, &mut ctl, 24);
    assert!(ctl.fell_back(), "near-total dropout must look stale");
    assert_eq!(r.num_failed_switches, 0, "no switch faults were configured");
    assert!(r.telemetry.dropped_samples() > 0);
}
