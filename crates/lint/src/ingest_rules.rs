//! Ingest pack (`PL7xx`): findings over external model manifests.
//!
//! The `powerlens-ingest` importer validates untrusted manifests and
//! describes everything it objects to as [`ImportIssue`]s — a neutral
//! vocabulary defined here so the importer does not need to know about
//! diagnostics and this crate does not need to parse manifests. The
//! [`check`] pass maps each issue onto its stable rule code; it runs on
//! every import (the CLI `import`/`--model` paths and the serve inline
//! manifest body), so a malformed manifest surfaces as a gated lint report
//! rather than a panic deep inside the planner.

use crate::diag::{LintReport, Location};
use crate::rules;
use crate::LintConfig;

/// One objection the importer raised against a manifest. Fatal variants
/// (everything except [`ImportIssue::InertSparsity`]) correspond to
/// error-severity rules; the importer refuses to produce a graph when any
/// of them is present.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportIssue {
    /// The manifest declares a schema version this build does not read.
    UnsupportedSchemaVersion {
        /// Version the manifest declared.
        found: u64,
        /// Version this build writes and reads.
        supported: u64,
    },
    /// A node names an operator outside the cost model's vocabulary.
    UnknownOp {
        /// Node index in the manifest's node list.
        node: usize,
        /// The unrecognized operator string.
        op: String,
    },
    /// A per-layer sparsity annotation is not a finite fraction in `[0, 1]`.
    SparsityOutOfRange {
        /// Node index in the manifest's node list.
        node: usize,
        /// The offending value.
        value: f64,
    },
    /// A node cannot consume the activation shape its predecessor produces.
    ShapeInference {
        /// Node index in the manifest's node list.
        node: usize,
        /// Operator name of the failing node.
        op: String,
        /// Display form of the shape it was offered.
        input: String,
    },
    /// A skip edge is dangling (beyond the node list) or cyclic (backward
    /// or self-referential).
    SkipEdge {
        /// Source node index.
        from: usize,
        /// Target node index.
        to: usize,
        /// Why the edge is invalid.
        detail: String,
    },
    /// A sparsity annotation sits on a zero-FLOP operator, where it scales
    /// nothing (warning).
    InertSparsity {
        /// Node index in the manifest's node list.
        node: usize,
        /// Operator name of the annotated node.
        op: String,
    },
}

impl ImportIssue {
    /// `true` for issues that must abort the import (error severity).
    pub fn is_fatal(&self) -> bool {
        !matches!(self, ImportIssue::InertSparsity { .. })
    }
}

impl std::fmt::Display for ImportIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportIssue::UnsupportedSchemaVersion { found, supported } => {
                write!(
                    f,
                    "schema version {found} unsupported (this build reads {supported})"
                )
            }
            ImportIssue::UnknownOp { node, op } => {
                write!(f, "node {node}: unknown operator {op:?}")
            }
            ImportIssue::SparsityOutOfRange { node, value } => {
                write!(f, "node {node}: sparsity {value} is outside [0, 1]")
            }
            ImportIssue::ShapeInference { node, op, input } => {
                write!(f, "node {node}: operator {op} cannot consume shape {input}")
            }
            ImportIssue::SkipEdge { from, to, detail } => {
                write!(f, "skip edge {from} -> {to}: {detail}")
            }
            ImportIssue::InertSparsity { node, op } => {
                write!(
                    f,
                    "node {node}: sparsity on zero-FLOP operator {op} has no effect"
                )
            }
        }
    }
}

pub(crate) fn check(issues: &[ImportIssue], config: &LintConfig, report: &mut LintReport) {
    for issue in issues {
        match issue {
            ImportIssue::UnsupportedSchemaVersion { found, supported } => {
                if config.enabled(rules::INGEST_SCHEMA_VERSION.code) {
                    report.push(
                        &rules::INGEST_SCHEMA_VERSION,
                        Location::Model,
                        format!(
                            "manifest declares schema version {found}; this build reads \
                             version {supported}"
                        ),
                    );
                }
            }
            ImportIssue::UnknownOp { node, op } => {
                if config.enabled(rules::INGEST_UNKNOWN_OP.code) {
                    report.push(
                        &rules::INGEST_UNKNOWN_OP,
                        Location::Layer(*node),
                        format!("unknown operator {op:?}"),
                    );
                }
            }
            ImportIssue::SparsityOutOfRange { node, value } => {
                if config.enabled(rules::INGEST_SPARSITY_RANGE.code) {
                    report.push(
                        &rules::INGEST_SPARSITY_RANGE,
                        Location::Layer(*node),
                        format!("sparsity {value} is outside [0, 1]"),
                    );
                }
            }
            ImportIssue::ShapeInference { node, op, input } => {
                if config.enabled(rules::INGEST_SHAPE_INFERENCE.code) {
                    report.push(
                        &rules::INGEST_SHAPE_INFERENCE,
                        Location::Layer(*node),
                        format!("operator {op} cannot consume shape {input}"),
                    );
                }
            }
            ImportIssue::SkipEdge { from, to, detail } => {
                if config.enabled(rules::INGEST_SKIP_EDGE.code) {
                    report.push(
                        &rules::INGEST_SKIP_EDGE,
                        Location::Edge(*from, *to),
                        format!("invalid skip edge: {detail}"),
                    );
                }
            }
            ImportIssue::InertSparsity { node, op } => {
                if config.enabled(rules::INGEST_INERT_SPARSITY.code) {
                    report.push(
                        &rules::INGEST_INERT_SPARSITY,
                        Location::Layer(*node),
                        format!("sparsity annotation on zero-FLOP operator {op} has no effect"),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_import;

    #[test]
    fn every_issue_maps_to_its_rule() {
        let issues = vec![
            ImportIssue::UnsupportedSchemaVersion {
                found: 9,
                supported: 1,
            },
            ImportIssue::UnknownOp {
                node: 0,
                op: "softplus".into(),
            },
            ImportIssue::SparsityOutOfRange {
                node: 1,
                value: 1.5,
            },
            ImportIssue::ShapeInference {
                node: 2,
                op: "conv2d".into(),
                input: "197t x768".into(),
            },
            ImportIssue::SkipEdge {
                from: 5,
                to: 2,
                detail: "edge points backward".into(),
            },
            ImportIssue::InertSparsity {
                node: 3,
                op: "flatten".into(),
            },
        ];
        let r = lint_import("m", &issues, &LintConfig::default());
        for code in ["PL701", "PL702", "PL703", "PL704", "PL705", "PL706"] {
            assert!(r.fired(code), "{code} should fire");
        }
        assert_eq!(r.num_errors(), 5);
        assert_eq!(r.num_warnings(), 1);
    }

    #[test]
    fn fatality_matches_severity() {
        assert!(ImportIssue::UnknownOp {
            node: 0,
            op: "x".into()
        }
        .is_fatal());
        assert!(!ImportIssue::InertSparsity {
            node: 0,
            op: "flatten".into()
        }
        .is_fatal());
    }

    #[test]
    fn clean_import_lints_clean() {
        let r = lint_import("m", &[], &LintConfig::default());
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let mut c = LintConfig::default();
        c.disabled.insert("PL706".to_string());
        let issues = [ImportIssue::InertSparsity {
            node: 0,
            op: "flatten".into(),
        }];
        assert!(lint_import("m", &issues, &c).diagnostics.is_empty());
    }
}
