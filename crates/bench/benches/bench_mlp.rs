//! Criterion micro-benchmarks: the from-scratch NN library backing the two
//! prediction models (Table 3's prediction-latency rows).

use criterion::{criterion_group, criterion_main, Criterion};
use powerlens_mlp::{train_mlp, Adam, Mlp, Sample, TrainConfig, TwoStageNet};
use powerlens_numeric::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_decision_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let net = Mlp::new(&[25, 96, 48, 14], &mut rng);
    let x = vec![0.3; 25];
    c.bench_function("decision_model_predict", |b| {
        b.iter(|| net.predict(black_box(&x)))
    });
}

fn bench_hyper_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let net = TwoStageNet::new(17, 8, 96, 14, &mut rng);
    let s = vec![0.1; 17];
    let t = vec![0.2; 8];
    c.bench_function("hyper_model_predict", |b| {
        b.iter(|| net.predict(black_box(&s), black_box(&t)))
    });
}

fn bench_training_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("mlp_backprop_step_batch32", |b| {
        let mut net = Mlp::new(&[25, 96, 48, 14], &mut rng);
        let mut adam = Adam::new(1e-3);
        let x = vec![0.5; 25];
        b.iter(|| {
            net.zero_grad();
            for i in 0..32 {
                net.backprop(black_box(&x), i % 14);
            }
            net.apply_step(&mut adam, 32);
        })
    });
}

fn bench_training_step_batched(c: &mut Criterion) {
    // Same step as `mlp_backprop_step_batch32`, through the batched GEMM
    // path the production training loop now takes.
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("mlp_backprop_step_batch32_batched", |b| {
        let mut net = Mlp::new(&[25, 96, 48, 14], &mut rng);
        let mut adam = Adam::new(1e-3);
        let xs = Matrix::from_rows(&vec![vec![0.5; 25]; 32]).unwrap();
        let labels: Vec<usize> = (0..32).map(|i| i % 14).collect();
        b.iter(|| {
            net.zero_grad();
            net.backprop_batch(black_box(&xs), black_box(&labels));
            net.apply_step(&mut adam, 32);
        })
    });
}

fn training_samples(n: usize, dim: usize, classes: usize, rng: &mut StdRng) -> Vec<Sample> {
    (0..n)
        .map(|i| Sample {
            input: (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            label: i % classes,
        })
        .collect()
}

/// The seed's training loop (per-sample backprop inside shuffled
/// mini-batches, per-sample final accuracy pass), kept as the before-side
/// of the batching comparison.
fn train_mlp_per_sample(
    net: &mut Mlp,
    samples: &[Sample],
    cfg: &TrainConfig,
    rng: &mut StdRng,
) -> f64 {
    let mut adam = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    for _ in 0..cfg.epochs {
        order.shuffle(rng);
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            net.zero_grad();
            for &i in chunk {
                net.backprop(&samples[i].input, samples[i].label);
            }
            net.apply_step(&mut adam, chunk.len());
        }
    }
    let correct = samples
        .iter()
        .filter(|s| net.predict(&s.input) == s.label)
        .count();
    correct as f64 / samples.len() as f64
}

fn bench_train_1k(c: &mut Criterion) {
    // Decision-model-sized training run over a 1k-sample set: the batched
    // path vs the seed's per-sample loop (identical math, see the batched
    // backprop property tests).
    let mut rng = StdRng::seed_from_u64(3);
    let samples = training_samples(1000, 25, 14, &mut rng);
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 1e-3,
    };
    let mut group = c.benchmark_group("mlp_train_1k");
    group.sample_size(30);
    group.bench_function("per_sample", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            let mut net = Mlp::new(&[25, 96, 48, 14], &mut rng);
            train_mlp_per_sample(&mut net, black_box(&samples), &cfg, &mut rng);
            net
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            let mut net = Mlp::new(&[25, 96, 48, 14], &mut rng);
            train_mlp(&mut net, black_box(&samples), &cfg, &mut rng);
            net
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_decision_forward,
    bench_hyper_forward,
    bench_training_step,
    bench_training_step_batched,
    bench_train_1k
);
criterion_main!(benches);
