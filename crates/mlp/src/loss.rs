/// Numerically stable softmax.
///
/// # Example
///
/// ```
/// use powerlens_mlp::softmax;
/// let p = softmax(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// ```
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Softmax cross-entropy loss for one sample; returns `(loss, dlogits)`.
///
/// # Panics
///
/// Panics if `label >= logits.len()`.
pub fn softmax_cross_entropy(logits: &[f64], label: usize) -> (f64, Vec<f64>) {
    let mut grad = Vec::new();
    let loss = softmax_cross_entropy_into(logits, label, &mut grad);
    (loss, grad)
}

/// Allocation-free [`softmax_cross_entropy`]: writes the logit gradient into
/// `grad`, reusing its capacity, and returns the loss. Bit-identical to the
/// allocating form.
///
/// # Panics
///
/// Panics if `label >= logits.len()`.
pub fn softmax_cross_entropy_into(logits: &[f64], label: usize, grad: &mut Vec<f64>) -> f64 {
    assert!(label < logits.len(), "label {label} out of range");
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    grad.clear();
    grad.extend(logits.iter().map(|l| (l - max).exp()));
    let sum: f64 = grad.iter().sum();
    for p in grad.iter_mut() {
        *p /= sum;
    }
    let loss = -(grad[label].max(1e-300)).ln();
    grad[label] -= 1.0;
    loss
}

/// Softmax cross-entropy over a batch of logit rows; returns per-sample
/// losses and the `batch x classes` gradient matrix.
///
/// Row `s` is exactly `softmax_cross_entropy(logits.row(s), labels[s])`, so
/// batched training can report the same losses as a per-sample loop.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
pub fn softmax_cross_entropy_batch(
    logits: &powerlens_numeric::Matrix,
    labels: &[usize],
) -> (Vec<f64>, powerlens_numeric::Matrix) {
    assert_eq!(labels.len(), logits.rows(), "labels/logits batch mismatch");
    let mut losses = Vec::with_capacity(labels.len());
    let mut grad = powerlens_numeric::Matrix::zeros(logits.rows(), logits.cols());
    for (s, &label) in labels.iter().enumerate() {
        let (loss, g) = softmax_cross_entropy(logits.row(s), label);
        losses.push(loss);
        grad.row_mut(s).copy_from_slice(&g);
    }
    (losses, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[1001.0, 1002.0]);
        assert!((a[0] - b[0]).abs() < 1e-12);
        let c = softmax(&[-1e30, 0.0]);
        assert!(c.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let (loss, _) = softmax_cross_entropy(&[100.0, 0.0], 0);
        assert!(loss < 1e-9);
        let (bad, _) = softmax_cross_entropy(&[100.0, 0.0], 1);
        assert!(bad > 50.0);
    }

    #[test]
    fn gradient_matches_numeric() {
        let logits = [0.3, -0.7, 1.2];
        let (_, grad) = softmax_cross_entropy(&logits, 1);
        let eps = 1e-6;
        for i in 0..3 {
            let mut lp = logits;
            lp[i] += eps;
            let (fp, _) = softmax_cross_entropy(&lp, 1);
            let mut lm = logits;
            lm[i] -= eps;
            let (fm, _) = softmax_cross_entropy(&lm, 1);
            let num = (fp - fm) / (2.0 * eps);
            assert!((grad[i] - num).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_sums_to_zero() {
        let (_, grad) = softmax_cross_entropy(&[0.1, 0.2, 0.3, 0.4], 2);
        assert!(grad.iter().sum::<f64>().abs() < 1e-12);
    }
}
