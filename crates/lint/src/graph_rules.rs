//! Graph pack: structural and shape-consistency rules over
//! [`powerlens_dnn::Graph`].

use powerlens_dnn::{Graph, Layer, OpKind, PoolKind, TensorShape};

use crate::diag::{LintReport, Location};
use crate::rules;
use crate::LintConfig;

/// Relative tolerance for comparing cached against recomputed layer costs.
const COST_REL_TOL: f64 = 1e-9;

/// Runs every graph rule over `graph`, appending findings to `report`.
pub fn check(graph: &Graph, config: &LintConfig, report: &mut LintReport) {
    if graph.num_layers() == 0 {
        if config.enabled(rules::GRAPH_EMPTY.code) {
            report.push(
                &rules::GRAPH_EMPTY,
                Location::Model,
                "graph contains no layers".to_string(),
            );
        }
        return; // every other rule assumes at least one layer
    }

    check_skip_edges(graph, config, report);

    // Shapes any later layer may legally consume: the graph input, every
    // earlier output, and — for branch heads that re-read a token stream as
    // a vector (ViT class-token extraction) — the flattened embedding of any
    // earlier token output. A set, so the per-layer check is O(1) instead
    // of a scan over every earlier output.
    let mut known_shapes = crate::dataflow::ShapeSet::default();
    known_shapes.insert(graph.input_shape());

    for (idx, layer) in graph.layers().iter().enumerate() {
        let loc = Location::Layer(idx);

        if layer.id != idx && config.enabled(rules::LAYER_ID_ORDER.code) {
            report.push(
                &rules::LAYER_ID_ORDER,
                loc,
                format!("layer at position {idx} carries id {}", layer.id),
            );
        }

        if config.enabled(rules::SHAPE_CHAIN_BROKEN.code)
            && !known_shapes.any_feeds(&layer.input_shape)
        {
            report.push(
                &rules::SHAPE_CHAIN_BROKEN,
                loc,
                format!(
                    "input shape {} is neither the graph input nor any earlier layer's output",
                    layer.input_shape
                ),
            );
        }
        known_shapes.insert(layer.output_shape);

        let shapes_ok = check_op(layer, idx, config, report);

        if config.enabled(rules::ZERO_ELEMENT_ACTIVATION.code)
            && (layer.input_shape.numel() == 0 || layer.output_shape.numel() == 0)
        {
            report.push(
                &rules::ZERO_ELEMENT_ACTIVATION,
                loc,
                format!(
                    "activation has zero elements ({} -> {})",
                    layer.input_shape, layer.output_shape
                ),
            );
        }

        if shapes_ok {
            check_cost_cache(layer, idx, config, report);
        }

        if config.enabled(rules::ZERO_FLOP_LAYER.code) && layer.flops() == 0.0 {
            report.push(
                &rules::ZERO_FLOP_LAYER,
                loc,
                format!("{} layer performs no floating-point work", layer.op.name()),
            );
        }
    }
}

/// `true` if `input` is one of the known upstream shapes, or the flattening
/// of a known token stream (`Tokens(n, d)` may be re-read as `Flat(d)` when
/// a head consumes a single token, e.g. the ViT class token). The
/// compatibility relation itself lives in [`TensorShape::feeds`], shared
/// with the dataflow engine's reachability analysis.
#[cfg(test)]
pub(crate) fn consumable(known: &[TensorShape], input: TensorShape) -> bool {
    known.iter().any(|s| s.feeds(&input))
}

/// Per-operator rules: degenerate hyperparameters (`PL007`), shape
/// compatibility (`PL003`), and output-shape cache agreement (`PL004`).
/// Returns `true` when the stored shapes are trustworthy enough for the
/// cost-cache recompute.
fn check_op(layer: &Layer, idx: usize, config: &LintConfig, report: &mut LintReport) -> bool {
    let loc = Location::Layer(idx);

    if let Some(why) = degenerate_params(&layer.op) {
        if config.enabled(rules::OP_DEGENERATE_PARAMS.code) {
            report.push(&rules::OP_DEGENERATE_PARAMS, loc, why);
        }
        return false;
    }

    let inferred = layer.op.try_output_shape(layer.input_shape);
    let arity_clash = arity_mismatch(&layer.op, layer.input_shape);
    let out = match (inferred, arity_clash) {
        (Some(out), None) => out,
        (_, arity_clash) => {
            if config.enabled(rules::OP_SHAPE_INCOMPATIBLE.code) {
                let why = arity_clash.unwrap_or_else(|| {
                    format!(
                        "{} cannot consume a {} input",
                        layer.op.name(),
                        layer.input_shape
                    )
                });
                report.push(&rules::OP_SHAPE_INCOMPATIBLE, loc, why);
            }
            return false;
        }
    };
    if out != layer.output_shape {
        if config.enabled(rules::SHAPE_CACHE_MISMATCH.code) {
            report.push(
                &rules::SHAPE_CACHE_MISMATCH,
                loc,
                format!(
                    "stored output shape {} but {} infers {} from input {}",
                    layer.output_shape,
                    layer.op.name(),
                    out,
                    layer.input_shape
                ),
            );
        }
        return false;
    }
    true
}

/// Describes why an operator's hyperparameters are degenerate, if they are.
fn degenerate_params(op: &OpKind) -> Option<String> {
    match *op {
        OpKind::Conv2d {
            in_ch,
            out_ch,
            kernel,
            stride,
            groups,
            ..
        } => {
            if in_ch == 0 || out_ch == 0 || kernel == 0 || stride == 0 || groups == 0 {
                Some(format!(
                    "conv2d with zero hyperparameter \
                     (in={in_ch}, out={out_ch}, k={kernel}, s={stride}, g={groups})"
                ))
            } else if in_ch % groups != 0 {
                Some(format!(
                    "conv2d groups {groups} do not divide in_ch {in_ch}"
                ))
            } else {
                None
            }
        }
        OpKind::Linear {
            in_features,
            out_features,
        } if in_features == 0 || out_features == 0 => Some(format!(
            "linear with zero features (in={in_features}, out={out_features})"
        )),
        OpKind::Pool {
            kind,
            kernel,
            stride,
        } if kind != PoolKind::GlobalAvg && (kernel == 0 || stride == 0) => Some(format!(
            "pool with zero window or stride (k={kernel}, s={stride})"
        )),
        OpKind::Attention { embed_dim, heads } => {
            if embed_dim == 0 || heads == 0 {
                Some(format!(
                    "attention with zero dimension (d={embed_dim}, heads={heads})"
                ))
            } else if embed_dim % heads != 0 {
                Some(format!(
                    "attention heads {heads} do not divide embed_dim {embed_dim}"
                ))
            } else {
                None
            }
        }
        OpKind::PatchEmbed {
            in_ch,
            embed_dim,
            patch,
            ..
        } if in_ch == 0 || embed_dim == 0 || patch == 0 => Some(format!(
            "patch_embed with zero hyperparameter (in={in_ch}, d={embed_dim}, p={patch})"
        )),
        _ => None,
    }
}

/// Channel/feature arity clashes [`OpKind::try_output_shape`] does not see:
/// it matches on shape *category* only, so a conv declared for 3 input
/// channels silently "consumes" a 64-channel map.
fn arity_mismatch(op: &OpKind, input: TensorShape) -> Option<String> {
    match (*op, input) {
        (OpKind::Conv2d { in_ch, .. }, TensorShape::Chw { c, .. }) if in_ch != c => Some(format!(
            "conv2d declared for {in_ch} input channels applied to {c}-channel map"
        )),
        (OpKind::PatchEmbed { in_ch, .. }, TensorShape::Chw { c, .. }) if in_ch != c => Some(
            format!("patch_embed declared for {in_ch} input channels applied to {c}-channel map"),
        ),
        (OpKind::Linear { in_features, .. }, TensorShape::Flat(n)) if in_features != n => {
            Some(format!(
                "linear declared for {in_features} input features applied to length-{n} vector"
            ))
        }
        (OpKind::Linear { in_features, .. }, TensorShape::Tokens { d, .. }) if in_features != d => {
            Some(format!(
                "linear declared for {in_features} input features applied to {d}-dim tokens"
            ))
        }
        (OpKind::Attention { embed_dim, .. }, TensorShape::Tokens { d, .. }) if embed_dim != d => {
            Some(format!(
                "attention declared for embed_dim {embed_dim} applied to {d}-dim tokens"
            ))
        }
        _ => None,
    }
}

/// `PL009`: cached costs must match a recompute and be finite. Only called
/// when the stored shapes passed `PL003`/`PL004`, so the recompute cannot
/// panic.
fn check_cost_cache(layer: &Layer, idx: usize, config: &LintConfig, report: &mut LintReport) {
    if !config.enabled(rules::COST_CACHE_STALE.code) {
        return;
    }
    let stale = |cached: f64, fresh: f64| -> bool {
        !cached.is_finite() || (cached - fresh).abs() > COST_REL_TOL * fresh.abs().max(1.0)
    };
    let norm_params = match layer.op {
        OpKind::BatchNorm | OpKind::LayerNorm => 2.0 * layer.input_shape.channels() as f64,
        _ => 0.0,
    };
    let checks = [
        ("flops", layer.flops(), layer.op.flops(layer.input_shape)),
        ("params", layer.params(), layer.op.params() + norm_params),
        (
            "memory_bytes",
            layer.memory_bytes(),
            layer.op.memory_bytes(layer.input_shape),
        ),
    ];
    for (what, cached, fresh) in checks {
        if stale(cached, fresh) {
            report.push(
                &rules::COST_CACHE_STALE,
                Location::Layer(idx),
                format!("cached {what} {cached} but recompute yields {fresh}"),
            );
        }
    }
}

/// `PL006`/`PL010`: skip edges must go forward to existing layers, and
/// should land on a merge operator.
fn check_skip_edges(graph: &Graph, config: &LintConfig, report: &mut LintReport) {
    let n = graph.num_layers();
    for &(from, to) in graph.skip_edges() {
        let loc = Location::Edge(from, to);
        if from >= n || to >= n {
            if config.enabled(rules::SKIP_EDGE_INVALID.code) {
                report.push(
                    &rules::SKIP_EDGE_INVALID,
                    loc,
                    format!("skip edge references a layer outside the graph (0..{n})"),
                );
            }
            continue;
        }
        if from >= to {
            if config.enabled(rules::SKIP_EDGE_INVALID.code) {
                report.push(
                    &rules::SKIP_EDGE_INVALID,
                    loc,
                    "skip edge does not point forward (cycle or self-loop)".to_string(),
                );
            }
            continue;
        }
        if config.enabled(rules::SKIP_TARGET_NOT_MERGE.code)
            && !matches!(graph.layer(to).op, OpKind::Add | OpKind::Concat { .. })
        {
            report.push(
                &rules::SKIP_TARGET_NOT_MERGE,
                loc,
                format!(
                    "skip edge terminates at a {} layer, expected add or concat",
                    graph.layer(to).op.name()
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerlens_dnn::{zoo, ActKind, GraphBuilder, Layer};

    fn conv(in_ch: usize, out_ch: usize) -> OpKind {
        OpKind::Conv2d {
            in_ch,
            out_ch,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        }
    }

    fn small_graph() -> Graph {
        let mut b = GraphBuilder::new("small", TensorShape::chw(3, 16, 16));
        let c1 = b.push("c1", conv(3, 8));
        b.push("r1", OpKind::Activation(ActKind::Relu));
        b.push("c2", conv(8, 8));
        let add = b.push("add", OpKind::Add);
        b.add_skip(c1, add);
        b.finish()
    }

    fn lint(g: &Graph) -> LintReport {
        let mut r = LintReport::new(g.name());
        check(g, &LintConfig::default(), &mut r);
        r
    }

    #[test]
    fn well_formed_graph_is_error_free() {
        assert!(!lint(&small_graph()).has_errors());
    }

    #[test]
    fn empty_graph_fires_pl001() {
        let g = Graph::from_parts_unchecked("empty", TensorShape::flat(8), vec![], vec![]);
        let r = lint(&g);
        assert!(r.fired("PL001"));
        assert_eq!(r.diagnostics.len(), 1, "PL001 short-circuits");
    }

    #[test]
    fn shuffled_ids_fire_pl002() {
        let mut g = small_graph();
        let mut layers = g.layers().to_vec();
        layers[1].id = 9;
        g = Graph::from_parts_unchecked("ids", g.input_shape(), layers, g.skip_edges().to_vec());
        assert!(lint(&g).fired("PL002"));
        assert!(!lint(&small_graph()).fired("PL002"));
    }

    #[test]
    fn category_clash_fires_pl003() {
        // A conv asked to consume a token sequence.
        let mut g = small_graph();
        let mut layers = g.layers().to_vec();
        layers[2].input_shape = TensorShape::tokens(4, 8);
        g = Graph::from_parts_unchecked("cat", g.input_shape(), layers, vec![]);
        assert!(lint(&g).fired("PL003"));
    }

    #[test]
    fn channel_arity_clash_fires_pl003() {
        // try_output_shape alone would accept this: category matches.
        let mut g = small_graph();
        let mut layers = g.layers().to_vec();
        layers[2].op = conv(5, 8); // input map has 8 channels
        g = Graph::from_parts_unchecked("arity", g.input_shape(), layers, vec![]);
        assert!(lint(&g).fired("PL003"));
        assert!(!lint(&small_graph()).fired("PL003"));
    }

    #[test]
    fn stored_shape_disagreement_fires_pl004() {
        let mut g = small_graph();
        let mut layers = g.layers().to_vec();
        layers[0].output_shape = TensorShape::chw(8, 5, 5);
        g = Graph::from_parts_unchecked("cache", g.input_shape(), layers, vec![]);
        let r = lint(&g);
        assert!(r.fired("PL004"));
        // Downstream, layer 1's input no longer matches any known shape.
        assert!(r.fired("PL005"));
        assert!(!lint(&small_graph()).fired("PL004"));
    }

    #[test]
    fn disconnected_input_fires_pl005() {
        let mut g = small_graph();
        let mut layers = g.layers().to_vec();
        layers[3].input_shape = TensorShape::chw(99, 1, 1);
        layers[3].output_shape = TensorShape::chw(99, 1, 1); // keep PL004 quiet
        g = Graph::from_parts_unchecked("chain", g.input_shape(), layers, vec![]);
        let r = lint(&g);
        assert!(r.fired("PL005"));
        assert!(!r.fired("PL004"));
    }

    #[test]
    fn token_flattening_is_consumable() {
        // ViT-style: a head reads Flat(d) out of a Tokens(n, d) stream.
        assert!(consumable(
            &[TensorShape::tokens(197, 768)],
            TensorShape::flat(768)
        ));
        assert!(!consumable(
            &[TensorShape::tokens(197, 768)],
            TensorShape::flat(769)
        ));
    }

    #[test]
    fn dangling_and_backward_edges_fire_pl006() {
        let g = small_graph();
        let dangling = Graph::from_parts_unchecked(
            "dangling",
            g.input_shape(),
            g.layers().to_vec(),
            vec![(0, 17)],
        );
        assert!(lint(&dangling).fired("PL006"));
        let backward = Graph::from_parts_unchecked(
            "backward",
            g.input_shape(),
            g.layers().to_vec(),
            vec![(3, 1)],
        );
        assert!(lint(&backward).fired("PL006"));
        assert!(!lint(&g).fired("PL006"));
    }

    #[test]
    fn zero_stride_fires_pl007() {
        let mut g = small_graph();
        let mut layers = g.layers().to_vec();
        layers[0].op = OpKind::Conv2d {
            in_ch: 3,
            out_ch: 8,
            kernel: 3,
            stride: 0,
            padding: 1,
            groups: 1,
        };
        g = Graph::from_parts_unchecked("deg", g.input_shape(), layers, vec![]);
        let r = lint(&g);
        assert!(r.fired("PL007"));
        // PL007 pre-empts the shape rules for that layer.
        assert!(!r.fired("PL003"));
        assert!(!lint(&small_graph()).fired("PL007"));
    }

    #[test]
    fn indivisible_heads_fire_pl007() {
        assert!(degenerate_params(&OpKind::Attention {
            embed_dim: 768,
            heads: 7,
        })
        .is_some());
        assert!(degenerate_params(&OpKind::Attention {
            embed_dim: 768,
            heads: 12,
        })
        .is_none());
    }

    #[test]
    fn zero_element_activation_fires_pl008() {
        let l = Layer::new(0, "fc", OpKind::Flatten, TensorShape::chw(0, 4, 4));
        let g = Graph::from_parts_unchecked("zero", TensorShape::chw(0, 4, 4), vec![l], vec![]);
        assert!(lint(&g).fired("PL008"));
        assert!(!lint(&small_graph()).fired("PL008"));
    }

    #[test]
    fn mutated_op_leaves_stale_caches_pl009() {
        let mut g = small_graph();
        let mut layers = g.layers().to_vec();
        // Swap in a fatter conv without rebuilding: cached costs now
        // undercount. Shapes still agree (same output map), so only the
        // cost cache is stale.
        layers[2].op = OpKind::Conv2d {
            in_ch: 8,
            out_ch: 8,
            kernel: 5,
            stride: 1,
            padding: 2,
            groups: 1,
        };
        g = Graph::from_parts_unchecked("stale", g.input_shape(), layers, g.skip_edges().to_vec());
        let r = lint(&g);
        assert!(r.fired("PL009"));
        assert!(
            !r.has_errors(),
            "staleness is a warning: {:?}",
            r.diagnostics
        );
        assert!(!lint(&small_graph()).fired("PL009"));
    }

    #[test]
    fn skip_to_non_merge_fires_pl010() {
        let mut b = GraphBuilder::new("nm", TensorShape::chw(3, 16, 16));
        b.push("c1", conv(3, 8));
        let r1 = b.push("r1", OpKind::Activation(ActKind::Relu));
        b.add_skip(0, r1);
        let r = lint(&b.finish());
        assert!(r.fired("PL010"));
        assert!(!r.has_errors());
        assert!(!lint(&small_graph()).fired("PL010"));
    }

    #[test]
    fn flatten_fires_pl011_info() {
        let mut b = GraphBuilder::new("flat", TensorShape::chw(3, 8, 8));
        b.push("c1", conv(3, 4));
        b.push("flat", OpKind::Flatten);
        let r = lint(&b.finish());
        assert!(r.fired("PL011"));
        assert_eq!(r.num_errors(), 0);
        assert_eq!(r.num_warnings(), 0);
    }

    #[test]
    fn zoo_is_clean_of_graph_errors() {
        for (name, build) in zoo::all_models() {
            let r = lint(&build());
            assert!(!r.has_errors(), "{name}: {:?}", r.diagnostics);
        }
    }
}
