//! Dataset generation (paper §2.2, "dataset generator").
//!
//! Produces the two labelled datasets of Figure 2:
//!
//! * **Dataset A** — per random network: global features → index of the
//!   clustering-hyperparameter scheme whose resulting plan achieves the best
//!   energy efficiency (each scheme's blocks are "deployed at all
//!   frequencies" through the analytic oracle);
//! * **Dataset B** — per power block of the winning scheme: block global
//!   features → the block's optimal frequency level.
//!
//! The paper generates 8000 networks yielding 31,242 block samples; the
//! count here is configurable (generation is CPU-cheap because the
//! frequency oracle is analytic rather than hardware-in-the-loop).

use powerlens_dnn::random::{self, RandomDnnConfig};
use powerlens_dnn::Graph;
use powerlens_features::GlobalFeatures;
use powerlens_mlp::{Sample, TwoStageSample};
use powerlens_obs as obs;
use powerlens_platform::Platform;

use crate::{PowerLens, PowerLensConfig};

/// Configuration of the dataset generator.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Number of random networks to generate (paper: 8000).
    pub num_networks: usize,
    /// RNG seed for network generation.
    pub seed: u64,
    /// Random-network generator bounds.
    pub random: RandomDnnConfig,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            num_networks: 600,
            seed: 2024,
            random: RandomDnnConfig::default(),
            threads: 0,
        }
    }
}

/// The two generated datasets (unscaled features; scaling is fitted during
/// training).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Datasets {
    /// Dataset A: network global features → best scheme index.
    pub hyper: Vec<TwoStageSample>,
    /// Dataset B: block global features → optimal frequency level.
    pub decision: Vec<Sample>,
    /// Networks processed.
    pub num_networks: usize,
}

/// Labels one network: scores every scheme with the oracle planner, emits
/// one Dataset A sample (best scheme), and one Dataset B sample per distinct
/// block across *all* schemes' power views (the paper subjects each network
/// to "clustering algorithms with varying hyperparameters" and labels every
/// resulting block — 8000 networks yield 31,242 blocks, ~4 per network).
fn label_network(pl: &PowerLens<'_>, graph: &Graph) -> (TwoStageSample, Vec<Sample>) {
    let outcome = pl
        .plan_oracle(graph)
        .expect("random networks produce finite features");
    let global = GlobalFeatures::of_graph(graph);
    let hyper_sample = TwoStageSample {
        structural: global.structural.clone(),
        statistics: global.statistics.clone(),
        label: outcome.scheme_index,
    };

    let mut seen = std::collections::HashSet::new();
    let mut block_samples = Vec::new();
    let mut add_block = |lo: usize, hi: usize| {
        if seen.insert((lo, hi)) {
            block_samples.push(Sample {
                input: GlobalFeatures::of_range(graph, lo, hi).concat(),
                label: pl.oracle_block_level(graph, lo, hi),
            });
        }
    };
    for b in outcome.view.blocks() {
        add_block(b.start, b.end);
    }
    for idx in 0..pl.config().schemes.len() {
        if let Ok(view) = powerlens_cluster::cluster_graph(graph, &pl.config().schemes.get(idx)) {
            for b in view.blocks() {
                add_block(b.start, b.end);
            }
        }
    }
    (hyper_sample, block_samples)
}

/// Chunk size for distributing `num_graphs` over at most `threads` workers.
///
/// The worker count is clamped to the graph count: with fewer graphs than
/// threads the naive `num_graphs.div_ceil(threads)` sizing degenerates to
/// single-graph chunks and pays the spawn cost of workers that have nothing
/// to do (worst case: `num_networks = 1` still fanned out across every
/// configured thread).
fn chunk_size(num_graphs: usize, threads: usize) -> usize {
    let workers = threads.min(num_graphs).max(1);
    num_graphs.div_ceil(workers).max(1)
}

/// Generates both datasets for `platform`, distributing networks over
/// worker threads.
pub fn generate(
    platform: &Platform,
    pl_config: &PowerLensConfig,
    ds_config: &DatasetConfig,
) -> Datasets {
    let _span = obs::span("dataset_generate");
    let start = std::time::Instant::now();
    let graphs = random::generate_batch(&ds_config.random, ds_config.seed, ds_config.num_networks);
    let threads = if ds_config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        ds_config.threads
    };
    let chunk = chunk_size(graphs.len(), threads);
    obs::counter("dataset.workers_spawned", graphs.chunks(chunk).len() as u64);

    let mut per_chunk: Vec<(Vec<TwoStageSample>, Vec<Sample>)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = graphs
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    let pl = PowerLens::untrained(platform, pl_config.clone());
                    let mut hyper = Vec::with_capacity(slice.len());
                    let mut decision = Vec::new();
                    for g in slice {
                        let (h, mut d) = label_network(&pl, g);
                        hyper.push(h);
                        decision.append(&mut d);
                        // Per-graph progress, aggregated across workers.
                        obs::counter("dataset.graphs_labeled", 1);
                    }
                    (hyper, decision)
                })
            })
            .collect();
        for h in handles {
            per_chunk.push(h.join().expect("worker panicked"));
        }
    });

    let mut out = Datasets {
        num_networks: graphs.len(),
        ..Datasets::default()
    };
    for (h, d) in per_chunk {
        out.hyper.extend(h);
        out.decision.extend(d);
    }
    if obs::enabled() {
        obs::counter("dataset.hyper_samples", out.hyper.len() as u64);
        obs::counter("dataset.decision_samples", out.decision.len() as u64);
        let secs = start.elapsed().as_secs_f64();
        if secs > 0.0 {
            obs::gauge("dataset.graphs_per_sec", out.num_networks as f64 / secs);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DatasetConfig {
        DatasetConfig {
            num_networks: 12,
            seed: 7,
            random: RandomDnnConfig::default(),
            threads: 2,
        }
    }

    #[test]
    fn generates_one_hyper_sample_per_network() {
        let p = Platform::agx();
        let ds = generate(&p, &PowerLensConfig::default(), &small_config());
        assert_eq!(ds.hyper.len(), 12);
        assert_eq!(ds.num_networks, 12);
        assert!(ds.decision.len() >= 12, "at least one block per network");
    }

    #[test]
    fn labels_are_in_range() {
        let p = Platform::tx2();
        let plc = PowerLensConfig::default();
        let ds = generate(&p, &plc, &small_config());
        for s in &ds.hyper {
            assert!(s.label < plc.schemes.len());
            assert_eq!(s.structural.len(), GlobalFeatures::STRUCTURAL_DIM);
            assert_eq!(s.statistics.len(), GlobalFeatures::STATISTICS_DIM);
        }
        for s in &ds.decision {
            assert!(s.label < p.gpu_levels());
            assert_eq!(
                s.input.len(),
                GlobalFeatures::STRUCTURAL_DIM + GlobalFeatures::STATISTICS_DIM
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = Platform::agx();
        let plc = PowerLensConfig::default();
        let a = generate(&p, &plc, &small_config());
        let b = generate(&p, &plc, &small_config());
        assert_eq!(a, b);
    }

    #[test]
    fn chunking_clamps_workers_to_graph_count() {
        // Regression: one graph across eight threads must use one chunk,
        // not eight single-graph chunks (seven of them empty workers).
        assert_eq!(chunk_size(1, 8), 1);
        assert_eq!(1usize.div_ceil(chunk_size(1, 8)), 1, "exactly one worker");
        // Fewer graphs than threads: one graph per worker, no idle spawns.
        assert_eq!(chunk_size(3, 8), 1);
        // More graphs than threads: ceil split over the full thread pool.
        assert_eq!(chunk_size(12, 8), 2);
        assert_eq!(chunk_size(12, 2), 6);
        // Degenerate inputs stay safe for `slice::chunks` (must be > 0).
        assert_eq!(chunk_size(0, 8), 1);
        assert_eq!(chunk_size(5, 0), 5);
    }

    #[test]
    fn single_network_many_threads_generates_correctly() {
        // Regression companion to `chunking_clamps_workers_to_graph_count`:
        // the end-to-end path with num_networks < threads.
        let p = Platform::agx();
        let cfg = DatasetConfig {
            num_networks: 1,
            threads: 8,
            ..small_config()
        };
        let ds = generate(&p, &PowerLensConfig::default(), &cfg);
        assert_eq!(ds.hyper.len(), 1);
        assert_eq!(ds.num_networks, 1);
        assert!(!ds.decision.is_empty());
    }

    #[test]
    fn labels_cover_multiple_classes() {
        // A healthy dataset must not collapse to one scheme or one level.
        let p = Platform::agx();
        let cfg = DatasetConfig {
            num_networks: 40,
            ..small_config()
        };
        let ds = generate(&p, &PowerLensConfig::default(), &cfg);
        let hyper_classes: std::collections::HashSet<_> =
            ds.hyper.iter().map(|s| s.label).collect();
        let level_classes: std::collections::HashSet<_> =
            ds.decision.iter().map(|s| s.label).collect();
        assert!(hyper_classes.len() >= 2, "hyper labels: {hyper_classes:?}");
        assert!(level_classes.len() >= 3, "level labels: {level_classes:?}");
    }
}
