//! A deliberately small HTTP/1.1 framing layer over `std::net`.
//!
//! The daemon needs exactly one exchange shape: read a request with an
//! optional body, write a response, close the connection. This module
//! implements that and nothing else — no keep-alive, no chunked encoding,
//! no TLS. Connections are `Connection: close`, which keeps the server's
//! concurrency story identical to its queue semantics (one queued item per
//! connection).

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed HTTP request: method, path, and the (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-cased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request path including any query string, e.g. `/plan`.
    pub path: String,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// Reads one HTTP/1.1 request from `stream`.
///
/// # Errors
///
/// Fails on malformed request lines, heads over [`MAX_HEAD`], bodies over
/// [`MAX_BODY`], non-numeric `Content-Length`, or plain I/O errors
/// (including read timeouts configured on the stream).
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    // Read until the blank line that terminates the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(bad_data("request head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before request head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad_data("empty request line"))?;
    let path = parts
        .next()
        .ok_or_else(|| bad_data("request line has no path"))?;

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad_data("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad_data("request body too large"));
    }

    let body_start = head_end + 4; // past "\r\n\r\n"
    let mut body = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// Writes one response and flushes it. The connection is always announced
/// as `Connection: close`; the caller drops the stream afterwards.
///
/// # Errors
///
/// Propagates I/O errors (including write timeouts) from the stream.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let reason = reason_phrase(status);
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Minimal blocking HTTP client: one request, one response, connection
/// closed. Used by the integration tests and the `check.sh` smoke probe as
/// a fallback when `curl` is unavailable.
///
/// Returns `(status, body)`.
///
/// # Errors
///
/// Fails on connection errors or a response without a valid status line.
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, tail) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad_data("response has no head/body separator"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_data("response has no status code"))?;
    Ok((status, tail.to_string()))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn round_trips_a_request_and_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/plan");
            assert_eq!(req.body, r#"{"model":"alexnet"}"#);
            write_response(&mut stream, 200, "application/json", r#"{"ok":true}"#).unwrap();
        });
        let (status, body) = request(&addr, "POST", "/plan", r#"{"model":"alexnet"}"#).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"ok":true}"#);
        server.join().unwrap();
    }

    #[test]
    fn bodyless_get_parses_with_empty_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "GET");
            assert!(req.body.is_empty());
            write_response(&mut stream, 404, "text/plain", "nope").unwrap();
        });
        let (status, body) = request(&addr, "GET", "/healthz", "").unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, "nope");
        server.join().unwrap();
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream).unwrap_err()
        });
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"POST /plan HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
            .unwrap();
        let err = server.join().unwrap();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
