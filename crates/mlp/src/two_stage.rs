use powerlens_numeric::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dense::{relu, relu_backward, relu_backward_matrix, relu_matrix};
use crate::network::argmax;
use crate::{softmax_cross_entropy, softmax_cross_entropy_batch, Adam, DenseLayer};

/// The clustering-hyperparameter prediction model of Figure 3.
///
/// Two-stage architecture: *structural* features are consumed at the input
/// ("to establish a basic understanding of the DNN structure"); *statistics*
/// features are concatenated onto the hidden representation at the network's
/// mid-stage ("to further enhance the prediction accuracy based on the
/// existing structural understanding"). The output is a softmax over
/// clustering-hyperparameter schemes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoStageNet {
    stage1: DenseLayer,
    stage2: DenseLayer,
    head: DenseLayer,
    statistics_dim: usize,
}

impl TwoStageNet {
    /// Creates the network.
    ///
    /// * `structural_dim` — width of the structural input,
    /// * `statistics_dim` — width of the mid-stage statistics input,
    /// * `hidden` — hidden width of both stages,
    /// * `classes` — number of hyperparameter schemes.
    pub fn new<R: Rng + ?Sized>(
        structural_dim: usize,
        statistics_dim: usize,
        hidden: usize,
        classes: usize,
        rng: &mut R,
    ) -> Self {
        TwoStageNet {
            stage1: DenseLayer::new(structural_dim, hidden, rng),
            stage2: DenseLayer::new(hidden + statistics_dim, hidden, rng),
            head: DenseLayer::new(hidden, classes, rng),
            statistics_dim,
        }
    }

    /// Width of the structural input.
    pub fn structural_dim(&self) -> usize {
        self.stage1.in_dim()
    }

    /// Width of the statistics input.
    pub fn statistics_dim(&self) -> usize {
        self.statistics_dim
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.head.out_dim()
    }

    /// Forward pass returning logits.
    ///
    /// # Panics
    ///
    /// Panics on input dimension mismatches.
    pub fn forward(&self, structural: &[f64], statistics: &[f64]) -> Vec<f64> {
        assert_eq!(statistics.len(), self.statistics_dim, "statistics dim");
        let h1 = relu(self.stage1.forward(structural));
        let mut cat = h1;
        cat.extend_from_slice(statistics);
        let h2 = relu(self.stage2.forward(&cat));
        self.head.forward(&h2)
    }

    /// Predicted class (argmax of logits).
    pub fn predict(&self, structural: &[f64], statistics: &[f64]) -> usize {
        argmax(&self.forward(structural, statistics))
    }

    /// Forward pass over a whole batch, returning the
    /// `batch x num_classes` logit matrix. Row `i` is bit-identical to
    /// `forward(structural.row(i), statistics.row(i))`.
    ///
    /// # Panics
    ///
    /// Panics on batch or dimension mismatches.
    pub fn forward_batch(&self, structural: &Matrix, statistics: &Matrix) -> Matrix {
        assert_eq!(statistics.cols(), self.statistics_dim, "statistics dim");
        assert_eq!(structural.rows(), statistics.rows(), "batch mismatch");
        let batch = structural.rows();
        let hidden = self.stage1.out_dim();
        let mut h1 = self.stage1.forward_batch(structural);
        relu_matrix(&mut h1);
        let mut cat = Matrix::zeros(batch, hidden + self.statistics_dim);
        for s in 0..batch {
            let row = cat.row_mut(s);
            row[..hidden].copy_from_slice(h1.row(s));
            row[hidden..].copy_from_slice(statistics.row(s));
        }
        let mut h2 = self.stage2.forward_batch(&cat);
        relu_matrix(&mut h2);
        self.head.forward_batch(&h2)
    }

    /// Predicted classes for a whole batch, one per row.
    pub fn predict_batch(&self, structural: &Matrix, statistics: &Matrix) -> Vec<usize> {
        let logits = self.forward_batch(structural, statistics);
        (0..logits.rows()).map(|i| argmax(logits.row(i))).collect()
    }

    /// Clears gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.stage1.zero_grad();
        self.stage2.zero_grad();
        self.head.zero_grad();
    }

    /// Forward + backward for one labelled sample; accumulates gradients and
    /// returns the loss.
    pub fn backprop(&mut self, structural: &[f64], statistics: &[f64], label: usize) -> f64 {
        let h1 = relu(self.stage1.forward(structural));
        let mut cat = h1.clone();
        cat.extend_from_slice(statistics);
        let h2 = relu(self.stage2.forward(&cat));
        let logits = self.head.forward(&h2);
        let (loss, dlogits) = softmax_cross_entropy(&logits, label);

        let mut dh2 = self.head.backward(&h2, &dlogits);
        relu_backward(&mut dh2, &h2);
        let dcat = self.stage2.backward(&cat, &dh2);
        let mut dh1 = dcat[..h1.len()].to_vec();
        relu_backward(&mut dh1, &h1);
        self.stage1.backward(structural, &dh1);
        loss
    }

    /// Forward + backward over a whole mini-batch (`structural` is
    /// `batch x structural_dim`, `statistics` is `batch x statistics_dim`);
    /// accumulates gradients and returns the per-sample losses in row order.
    ///
    /// Bit-identical to row-by-row [`TwoStageNet::backprop`] calls, for the
    /// same reason as [`crate::Mlp::backprop_batch`].
    ///
    /// # Panics
    ///
    /// Panics on batch or dimension mismatches.
    pub fn backprop_batch(
        &mut self,
        structural: &Matrix,
        statistics: &Matrix,
        labels: &[usize],
    ) -> Vec<f64> {
        assert_eq!(statistics.cols(), self.statistics_dim, "statistics dim");
        assert_eq!(structural.rows(), statistics.rows(), "batch mismatch");
        let batch = structural.rows();
        let hidden = self.stage1.out_dim();

        let mut h1 = self.stage1.forward_batch(structural);
        relu_matrix(&mut h1);
        let mut cat = Matrix::zeros(batch, hidden + self.statistics_dim);
        for s in 0..batch {
            let row = cat.row_mut(s);
            row[..hidden].copy_from_slice(h1.row(s));
            row[hidden..].copy_from_slice(statistics.row(s));
        }
        let mut h2 = self.stage2.forward_batch(&cat);
        relu_matrix(&mut h2);
        let logits = self.head.forward_batch(&h2);
        let (losses, dlogits) = softmax_cross_entropy_batch(&logits, labels);

        let mut dh2 = self.head.backward_batch(&h2, &dlogits);
        relu_backward_matrix(&mut dh2, &h2);
        let dcat = self.stage2.backward_batch(&cat, &dh2);
        let mut dh1 = Matrix::zeros(batch, hidden);
        for s in 0..batch {
            dh1.row_mut(s).copy_from_slice(&dcat.row(s)[..hidden]);
        }
        relu_backward_matrix(&mut dh1, &h1);
        self.stage1.backward_batch(structural, &dh1);
        losses
    }

    /// One Adam step over the three layers after a mini-batch of
    /// `batch_size` backprop calls.
    pub fn apply_step(&mut self, adam: &mut Adam, batch_size: usize) {
        adam.begin_step();
        adam.step_layer(0, &mut self.stage1, batch_size);
        adam.step_layer(1, &mut self.stage2, batch_size);
        adam.step_layer(2, &mut self.head, batch_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = TwoStageNet::new(5, 3, 16, 4, &mut rng);
        let logits = net.forward(&[0.0; 5], &[0.0; 3]);
        assert_eq!(logits.len(), 4);
        assert_eq!(net.structural_dim(), 5);
        assert_eq!(net.statistics_dim(), 3);
        assert_eq!(net.num_classes(), 4);
    }

    #[test]
    fn statistics_input_affects_output() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = TwoStageNet::new(4, 2, 16, 3, &mut rng);
        let s = [0.3, -0.2, 0.9, 0.1];
        let a = net.forward(&s, &[5.0, -5.0]);
        let b = net.forward(&s, &[-5.0, 5.0]);
        assert_ne!(a, b);
    }

    #[test]
    fn learns_label_from_statistics_branch() {
        // Label depends *only* on the statistics input — the mid-stage
        // injection must carry gradient.
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = TwoStageNet::new(2, 1, 16, 2, &mut rng);
        let mut adam = Adam::new(0.02);
        for _ in 0..300 {
            net.zero_grad();
            net.backprop(&[0.1, 0.1], &[1.0], 1);
            net.backprop(&[0.1, 0.1], &[-1.0], 0);
            net.apply_step(&mut adam, 2);
        }
        assert_eq!(net.predict(&[0.1, 0.1], &[1.0]), 1);
        assert_eq!(net.predict(&[0.1, 0.1], &[-1.0]), 0);
    }

    #[test]
    fn learns_label_from_structural_branch() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = TwoStageNet::new(1, 1, 16, 2, &mut rng);
        let mut adam = Adam::new(0.02);
        for _ in 0..300 {
            net.zero_grad();
            net.backprop(&[1.0], &[0.0], 1);
            net.backprop(&[-1.0], &[0.0], 0);
            net.apply_step(&mut adam, 2);
        }
        assert_eq!(net.predict(&[1.0], &[0.0]), 1);
        assert_eq!(net.predict(&[-1.0], &[0.0]), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = TwoStageNet::new(3, 2, 8, 3, &mut rng);
        let json = serde_json::to_string(&net).unwrap();
        let back: TwoStageNet = serde_json::from_str(&json).unwrap();
        let logits = net.forward(&[1.0, 2.0, 3.0], &[0.5, 0.5]);
        for (a, b) in back
            .forward(&[1.0, 2.0, 3.0], &[0.5, 0.5])
            .iter()
            .zip(logits)
        {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "statistics dim")]
    fn wrong_statistics_dim_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = TwoStageNet::new(2, 2, 4, 2, &mut rng);
        net.forward(&[0.0; 2], &[0.0; 3]);
    }
}
