//! Reproduces the **prediction-model accuracies** of §2.2 (Figures 3/4 and
//! their footnote): the paper trains on 8000 random networks (31,242 block
//! samples, 80/10/10 split) and reports 92.6 % test accuracy for the
//! clustering-hyperparameter model and 94.2 % for the target-frequency
//! decision model, with mispredictions "only one or two levels away".
//!
//! ```text
//! cargo run --release -p powerlens-bench --bin model_accuracy
//! # paper scale:
//! POWERLENS_NETS=8000 cargo run --release -p powerlens-bench --bin model_accuracy
//! ```

use powerlens_bench::{dataset_networks, rule, train_fresh};
use powerlens_platform::Platform;

fn main() {
    let nets = dataset_networks();
    println!("Prediction model accuracy (paper §2.2; {nets} random networks)");
    rule(96);
    println!(
        "{:<9} {:>9} {:>8} | {:>12} {:>12} | {:>12} {:>12} {:>10}",
        "platform",
        "networks",
        "blocks",
        "hyper val",
        "hyper test",
        "dec. val",
        "dec. test",
        "within±1"
    );
    rule(96);
    for platform in [Platform::tx2(), Platform::agx()] {
        let (models, _, _) = train_fresh(&platform, nets);
        let r = &models.report;
        println!(
            "{:<9} {:>9} {:>8} | {:>11.1}% {:>11.1}% | {:>11.1}% {:>11.1}% {:>9.1}%",
            platform.name(),
            r.num_hyper_samples,
            r.num_decision_samples,
            r.hyper_val_accuracy * 100.0,
            r.hyper_test_accuracy * 100.0,
            r.decision_val_accuracy * 100.0,
            r.decision_test_accuracy * 100.0,
            r.decision_within_one_level * 100.0
        );
    }
    rule(96);
    println!("paper: hyperparameter model 92.6% test accuracy; decision model 94.2%,");
    println!("       with mispredictions one or two levels from the optimum.");
}
