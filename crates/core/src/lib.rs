//! # PowerLens — adaptive DVFS for deep neural networks
//!
//! A reproduction of *"PowerLens: An Adaptive DVFS Framework for Optimizing
//! Energy Efficiency in Deep Neural Networks"* (Geng et al., DAC 2024), built
//! on a simulated Jetson platform (see `DESIGN.md` at the repository root for
//! the substitution rationale).
//!
//! The framework is **offline**: given a DNN it
//!
//! 1. extracts power-sensitive features
//!    ([`powerlens_features`]),
//! 2. predicts clustering hyperparameters with a learned two-stage model
//!    (Figure 3),
//! 3. clusters operators into **power blocks** by power-behaviour similarity
//!    ([`powerlens_cluster`], Algorithm 1),
//! 4. predicts each block's **target frequency** with a learned decision
//!    model (Figure 4), and
//! 5. emits an [`InstrumentationPlan`] that presets the GPU frequency before
//!    every block — proactive DVFS with no runtime lag or ping-pong.
//!
//! The [`dataset`] and [`training`] modules implement the paper's §2.2 model
//! training phase (random-network generation, exhaustive frequency
//! labelling, 80/10/10 split); [`ablation`] implements the P-R / P-N
//! variants of Table 2.
//!
//! # Example
//!
//! ```
//! use powerlens::{PowerLens, PowerLensConfig};
//! use powerlens_platform::Platform;
//! use powerlens_sim::{Engine, PlanController};
//! use powerlens_dnn::zoo;
//!
//! let agx = Platform::agx();
//! // The oracle-backed planner works without trained models.
//! let pl = PowerLens::untrained(&agx, PowerLensConfig::default());
//! let g = zoo::resnet34();
//! let outcome = pl.plan_oracle(&g).unwrap();
//! assert!(outcome.plan.num_blocks() >= 1);
//!
//! let engine = Engine::new(&agx).with_batch(8);
//! let mut ctl = PlanController::new(outcome.plan);
//! let report = engine.run(&g, &mut ctl, 16);
//! assert!(report.energy_efficiency > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod ablation;
pub mod dataset;
mod evaluate;
pub mod extensions;
mod multi_plan;
mod pipeline;
mod schemes;
pub mod training;

pub use evaluate::{evaluate_plan, PlanEval};
pub use multi_plan::MultiPlanController;
pub use pipeline::{PlanOutcome, PowerLens, PowerLensConfig, PowerLensError, WorkflowTimings};
pub use schemes::{default_schemes, SchemeSpace};
pub use training::TrainedModels;

// Re-export the pieces users compose with, so `powerlens` works as a
// one-stop dependency.
pub use powerlens_cluster::{ClusterParams, PowerBlock, PowerView};
pub use powerlens_sim::{InstrumentationPlan, InstrumentationPoint, PlanController};
