//! Store pack: rules over cached plan-store entries.
//!
//! The plan store (`powerlens-store`) content-addresses `PlanOutcome`s by
//! graph fingerprint + configuration + model version, but an on-disk entry
//! outlives the process that wrote it: the platform tables, the entry
//! schema, or the file bytes themselves may have drifted by the time it is
//! read back. These rules are the load-time gate — a cached plan that fails
//! them must be re-planned, never deployed.

use powerlens_platform::{InstrumentationPlan, Platform};

use crate::diag::{LintReport, Location};
use crate::rules;
use crate::LintConfig;

/// Compact identity of a platform's frequency contract: the board name plus
/// both table sizes. Two platforms with equal signatures interpret every
/// frequency level in a plan identically, which is exactly what a cached
/// plan needs to stay valid (`PL301`).
pub fn platform_signature(platform: &Platform) -> String {
    format!(
        "{}:g{}:c{}",
        platform.name(),
        platform.gpu_levels(),
        platform.cpu_levels()
    )
}

/// A cached plan in its load context: the deserialized plan, the platform it
/// is about to be deployed on, and the provenance recorded in the entry.
pub struct CachedPlanContext<'a> {
    /// The deserialized plan.
    pub plan: &'a InstrumentationPlan,
    /// The platform the plan is about to run on.
    pub platform: &'a Platform,
    /// Platform signature recorded in the cache entry at write time.
    pub entry_platform: &'a str,
    /// Schema version recorded in the cache entry.
    pub entry_schema: u32,
    /// Schema version this build writes.
    pub expected_schema: u32,
}

/// Runs every store rule, appending findings to `report`.
pub fn check(ctx: &CachedPlanContext<'_>, config: &LintConfig, report: &mut LintReport) {
    let current = platform_signature(ctx.platform);
    if ctx.entry_platform != current && config.enabled(rules::STORE_PLATFORM_DRIFT.code) {
        report.push(
            &rules::STORE_PLATFORM_DRIFT,
            Location::Model,
            format!(
                "entry was planned for platform {:?} but is being loaded on {current:?}",
                ctx.entry_platform
            ),
        );
    }
    if ctx.entry_schema != ctx.expected_schema && config.enabled(rules::STORE_SCHEMA_OUTDATED.code)
    {
        report.push(
            &rules::STORE_SCHEMA_OUTDATED,
            Location::Model,
            format!(
                "entry has schema version {}, this build writes version {}",
                ctx.entry_schema, ctx.expected_schema
            ),
        );
    }
}
