//! Dataset generation (paper §2.2, "dataset generator").
//!
//! Produces the two labelled datasets of Figure 2:
//!
//! * **Dataset A** — per random network: global features → index of the
//!   clustering-hyperparameter scheme whose resulting plan achieves the best
//!   energy efficiency (each scheme's blocks are "deployed at all
//!   frequencies" through the analytic oracle);
//! * **Dataset B** — per power block of the winning scheme: block global
//!   features → the block's optimal frequency level.
//!
//! The paper generates 8000 networks yielding 31,242 block samples; the
//! count here is configurable (generation is CPU-cheap because the
//! frequency oracle is analytic rather than hardware-in-the-loop).

use powerlens_dnn::random::{self, RandomDnnConfig};
use powerlens_dnn::Graph;
use powerlens_features::GlobalFeatures;
use powerlens_mlp::{Sample, TwoStageSample};
use powerlens_obs as obs;
use powerlens_par as par;
use powerlens_platform::Platform;

use crate::{PowerLens, PowerLensConfig};

/// Configuration of the dataset generator.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Number of random networks to generate (paper: 8000).
    pub num_networks: usize,
    /// RNG seed for network generation.
    pub seed: u64,
    /// Random-network generator bounds.
    pub random: RandomDnnConfig,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            num_networks: 600,
            seed: 2024,
            random: RandomDnnConfig::default(),
            threads: 0,
        }
    }
}

/// The two generated datasets (unscaled features; scaling is fitted during
/// training).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Datasets {
    /// Dataset A: network global features → best scheme index.
    pub hyper: Vec<TwoStageSample>,
    /// Dataset B: block global features → optimal frequency level.
    pub decision: Vec<Sample>,
    /// Networks processed.
    pub num_networks: usize,
}

/// Labels one network: scores every scheme with the oracle planner, emits
/// one Dataset A sample (best scheme), and one Dataset B sample per distinct
/// block across *all* schemes' power views (the paper subjects each network
/// to "clustering algorithms with varying hyperparameters" and labels every
/// resulting block — 8000 networks yield 31,242 blocks, ~4 per network).
fn label_network(pl: &PowerLens<'_>, graph: &Graph) -> (TwoStageSample, Vec<Sample>) {
    let outcome = pl
        .plan_oracle(graph)
        .expect("random networks produce finite features");
    let global = GlobalFeatures::of_graph(graph);
    let hyper_sample = TwoStageSample {
        structural: global.structural.clone(),
        statistics: global.statistics.clone(),
        label: outcome.scheme_index,
    };

    let mut seen = std::collections::HashSet::new();
    let mut block_samples = Vec::new();
    let mut add_block = |lo: usize, hi: usize| {
        if seen.insert((lo, hi)) {
            block_samples.push(Sample {
                input: GlobalFeatures::of_range(graph, lo, hi).concat(),
                label: pl.oracle_block_level(graph, lo, hi),
            });
        }
    };
    for b in outcome.view.blocks() {
        add_block(b.start, b.end);
    }
    // One DistanceCache covers the scheme walk: every scheme in the default
    // space shares the shape parameters, so only ε/minPts re-thresholding
    // runs per scheme (heterogeneous spaces rebuild on mismatch).
    let mut cache: Option<powerlens_cluster::DistanceCache> = None;
    for idx in 0..pl.config().schemes.len() {
        let params = pl.config().schemes.get(idx);
        let c = match cache.take() {
            Some(c) if c.matches(&params) => Ok(c),
            _ => powerlens_cluster::DistanceCache::build(graph, &params),
        };
        if let Ok(c) = c {
            for b in c.cluster(&params).blocks() {
                add_block(b.start, b.end);
            }
            cache = Some(c);
        }
    }
    (hyper_sample, block_samples)
}

/// Generates both datasets for `platform`, distributing networks over the
/// scoped thread pool ([`powerlens_par`]).
///
/// Each graph is an independent work unit and results are returned in
/// generation order, so the output is bit-identical for a fixed seed
/// regardless of `ds_config.threads`.
pub fn generate(
    platform: &Platform,
    pl_config: &PowerLensConfig,
    ds_config: &DatasetConfig,
) -> Datasets {
    let _span = obs::span("dataset_generate");
    let start = std::time::Instant::now();
    let graphs = random::generate_batch(&ds_config.random, ds_config.seed, ds_config.num_networks);
    let (workers, _) = par::plan(graphs.len(), ds_config.threads);
    obs::counter("dataset.workers_spawned", workers as u64);

    let pl = PowerLens::untrained(platform, pl_config.clone());
    let labeled: Vec<(TwoStageSample, Vec<Sample>)> =
        par::map_slice(&graphs, ds_config.threads, |_, g| {
            let graph_started = std::time::Instant::now();
            let labels = label_network(&pl, g);
            if obs::enabled() {
                obs::counter("dataset.graphs_labeled", 1);
                obs::histogram(
                    "dataset.graph_label_ms",
                    graph_started.elapsed().as_secs_f64() * 1e3,
                );
            }
            labels
        });

    let mut out = Datasets {
        num_networks: graphs.len(),
        ..Datasets::default()
    };
    for (h, mut d) in labeled {
        out.hyper.push(h);
        out.decision.append(&mut d);
    }
    if obs::enabled() {
        obs::counter("dataset.hyper_samples", out.hyper.len() as u64);
        obs::counter("dataset.decision_samples", out.decision.len() as u64);
        let secs = start.elapsed().as_secs_f64();
        if secs > 0.0 {
            obs::gauge("dataset.graphs_per_sec", out.num_networks as f64 / secs);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DatasetConfig {
        DatasetConfig {
            num_networks: 12,
            seed: 7,
            random: RandomDnnConfig::default(),
            threads: 2,
        }
    }

    #[test]
    fn generates_one_hyper_sample_per_network() {
        let p = Platform::agx();
        let ds = generate(&p, &PowerLensConfig::default(), &small_config());
        assert_eq!(ds.hyper.len(), 12);
        assert_eq!(ds.num_networks, 12);
        assert!(ds.decision.len() >= 12, "at least one block per network");
    }

    #[test]
    fn labels_are_in_range() {
        let p = Platform::tx2();
        let plc = PowerLensConfig::default();
        let ds = generate(&p, &plc, &small_config());
        for s in &ds.hyper {
            assert!(s.label < plc.schemes.len());
            assert_eq!(s.structural.len(), GlobalFeatures::STRUCTURAL_DIM);
            assert_eq!(s.statistics.len(), GlobalFeatures::STATISTICS_DIM);
        }
        for s in &ds.decision {
            assert!(s.label < p.gpu_levels());
            assert_eq!(
                s.input.len(),
                GlobalFeatures::STRUCTURAL_DIM + GlobalFeatures::STATISTICS_DIM
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = Platform::agx();
        let plc = PowerLensConfig::default();
        let a = generate(&p, &plc, &small_config());
        let b = generate(&p, &plc, &small_config());
        assert_eq!(a, b);
    }

    #[test]
    fn generation_is_identical_for_any_thread_count() {
        // The acceptance bar for the scoped thread pool: a fixed seed must
        // produce bit-identical datasets on 1, 2, or 8 workers.
        let p = Platform::agx();
        let plc = PowerLensConfig::default();
        let run = |threads: usize| {
            generate(
                &p,
                &plc,
                &DatasetConfig {
                    threads,
                    ..small_config()
                },
            )
        };
        let sequential = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(sequential, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn single_network_many_threads_generates_correctly() {
        // Regression: the end-to-end path with num_networks < threads must
        // not spawn idle workers (powerlens_par clamps the fan-out).
        let p = Platform::agx();
        let cfg = DatasetConfig {
            num_networks: 1,
            threads: 8,
            ..small_config()
        };
        let ds = generate(&p, &PowerLensConfig::default(), &cfg);
        assert_eq!(ds.hyper.len(), 1);
        assert_eq!(ds.num_networks, 1);
        assert!(!ds.decision.is_empty());
    }

    #[test]
    fn labels_cover_multiple_classes() {
        // A healthy dataset must not collapse to one scheme or one level.
        let p = Platform::agx();
        let cfg = DatasetConfig {
            num_networks: 40,
            ..small_config()
        };
        let ds = generate(&p, &PowerLensConfig::default(), &cfg);
        let hyper_classes: std::collections::HashSet<_> =
            ds.hyper.iter().map(|s| s.label).collect();
        let level_classes: std::collections::HashSet<_> =
            ds.decision.iter().map(|s| s.label).collect();
        assert!(hyper_classes.len() >= 2, "hyper labels: {hyper_classes:?}");
        assert!(level_classes.len() >= 3, "level labels: {level_classes:?}");
    }
}
