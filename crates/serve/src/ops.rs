//! Callable command logic, shared by the CLI and the daemon.
//!
//! Historically the plan/compare/lint flows lived inside
//! `powerlens-cli`'s subcommand functions, interleaved with `println!`.
//! This module is the library split: each operation takes plain inputs and
//! returns plain data, so the CLI renders tables, the daemon renders JSON,
//! and both execute the exact same logic.

use std::path::Path;

use powerlens::{
    PlanController, PlanOutcome, PowerLens, PowerLensConfig, TrainedModels, WorkflowTimings,
};
use powerlens_cluster::{cluster_graph, ClusterParams, PowerBlock, PowerView};
use powerlens_dnn::{zoo, Graph};
use powerlens_faults::FaultPlan;
use powerlens_governors::{oracle, Bim, FpgCg, FpgG, HybridConfig, HybridGovernor, HybridStats};
use powerlens_lint::LintReport;
use powerlens_platform::{InstrumentationPlan, InstrumentationPoint, Platform};
use powerlens_sim::{run_taskflow, Controller, Degraded, Engine, TaskSpec};
use powerlens_store::{lint_cache_key, LintCache};

/// Resolves a platform name (`agx`, `tx2`, `cloud`).
pub fn platform_by_name(name: &str) -> Option<Platform> {
    match name {
        "agx" => Some(Platform::agx()),
        "tx2" => Some(Platform::tx2()),
        "cloud" => Some(Platform::cloud_v100()),
        _ => None,
    }
}

/// Resolves a zoo model by name, with the same error text the CLI always
/// printed.
pub fn graph_by_name(name: &str) -> Result<Graph, String> {
    zoo::by_name(name).ok_or_else(|| {
        format!("unknown model {name:?}; run `powerlens zoo` for the available names")
    })
}

/// Loads trained models from disk.
pub fn load_models(path: &Path) -> Result<TrainedModels, String> {
    TrainedModels::load(path)
        .map_err(|e| format!("cannot load models from {}: {e}", path.display()))
}

/// Builds a planner for `platform`: model-driven when `models` is given,
/// exhaustive oracle search otherwise.
pub fn make_planner<'p>(
    platform: &'p Platform,
    batch: usize,
    models: Option<TrainedModels>,
) -> PowerLens<'p> {
    let config = PowerLensConfig {
        batch,
        ..PowerLensConfig::default()
    };
    match models {
        Some(m) => PowerLens::with_models(platform, config, m),
        None => PowerLens::untrained(platform, config),
    }
}

/// One controller's result in a comparison run.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Controller name as reported by the task flow.
    pub method: String,
    /// Total energy over the flow (joules).
    pub energy_j: f64,
    /// Total simulated time (seconds).
    pub time_s: f64,
    /// Energy efficiency (images per joule).
    pub energy_efficiency: f64,
    /// DVFS switches issued.
    pub switches: usize,
}

/// Races the PowerLens plan against the baseline governors (BiM, FPG-G,
/// FPG-CG) over `tasks` repetitions of `images` images each, returning one
/// row per controller in a stable order (PowerLens first).
///
/// With `faults`, the engine injects the given fault plan and the
/// comparison additionally includes the `Degraded` wrapper (plan →
/// BiM fallback) — the same line-up `powerlens-cli compare` prints.
pub fn compare_controllers(
    platform: &Platform,
    graph: &Graph,
    plan: &InstrumentationPlan,
    batch: usize,
    images: usize,
    tasks: usize,
    faults: Option<&FaultPlan>,
) -> Vec<CompareRow> {
    compare_controllers_hybrid(platform, graph, plan, batch, images, tasks, faults, false).0
}

/// [`compare_controllers`] plus an opt-in [`HybridGovernor`] row.
///
/// With `hybrid`, a hybrid row (default [`HybridConfig`], no re-plan hook)
/// joins the line-up after the PowerLens row, and the returned
/// [`HybridStats`] describe what its ladder did — `None` when `hybrid` is
/// false. Row order stays PowerLens, then hybrid (when requested), then the
/// baselines, then `degraded` (when faulted).
#[allow(clippy::too_many_arguments)]
pub fn compare_controllers_hybrid(
    platform: &Platform,
    graph: &Graph,
    plan: &InstrumentationPlan,
    batch: usize,
    images: usize,
    tasks: usize,
    faults: Option<&FaultPlan>,
    hybrid: bool,
) -> (Vec<CompareRow>, Option<HybridStats>) {
    let mut engine = Engine::new(platform).with_batch(batch);
    if let Some(f) = faults {
        engine = engine.with_faults(f.clone());
    }
    let specs: Vec<TaskSpec<'_>> = (0..tasks.max(1))
        .map(|_| TaskSpec { graph, images })
        .collect();

    let mut plan_ctl = PlanController::new(plan.clone());
    let mut hybrid_ctl =
        HybridGovernor::new(platform, plan.clone(), batch, HybridConfig::default());
    let mut degraded = Degraded::new(PlanController::new(plan.clone()), Bim::new(platform));
    let mut bim = Bim::new(platform);
    let mut fpg_g = FpgG::new(platform);
    let mut fpg_cg = FpgCg::new(platform);
    let mut controllers: Vec<&mut dyn Controller> = vec![&mut plan_ctl];
    if hybrid {
        controllers.push(&mut hybrid_ctl);
    }
    controllers.extend([&mut fpg_cg as &mut dyn Controller, &mut fpg_g, &mut bim]);
    if faults.is_some() {
        controllers.push(&mut degraded);
    }

    let rows = controllers
        .into_iter()
        .map(|ctl| {
            let r = run_taskflow(&engine, &specs, ctl);
            CompareRow {
                method: r.controller,
                energy_j: r.total_energy,
                time_s: r.total_time,
                energy_efficiency: r.energy_efficiency,
                switches: r.num_switches,
            }
        })
        .collect();
    let stats = hybrid.then(|| {
        let s = hybrid_ctl.stats();
        // Surface the run's ladder counters as gauges too: the counters
        // accumulate across runs, the gauges snapshot the latest one.
        powerlens_obs::gauge("hybrid.last_run.drift_detected", s.drift_detected as f64);
        powerlens_obs::gauge("hybrid.last_run.replans", s.replans as f64);
        s
    });
    (rows, stats)
}

/// Lints one model end to end: graph pack, the view produced by
/// clustering, an oracle-derived instrumentation plan with the `PL209`
/// cross-check enabled, and the `PL5xx` dataflow pack — the logic behind
/// `powerlens-cli lint`.
///
/// # Errors
///
/// Returns an error when clustering itself fails; lint findings (including
/// error-severity ones) are reported in the `LintReport`, not as `Err`.
pub fn lint_model(platform: &Platform, graph: &Graph, batch: usize) -> Result<LintReport, String> {
    let config = powerlens_lint::LintConfig::default();
    let view = cluster_graph(graph, &ClusterParams::default())
        .map_err(|e| format!("clustering {} failed: {e}", graph.name()))?;
    let oracle_fn = |lo: usize, hi: usize| {
        oracle::best_level_for_range(platform, graph, lo, hi, batch, oracle::DEFAULT_SLACK)
    };
    let points = view
        .blocks()
        .iter()
        .map(|b| InstrumentationPoint {
            layer: b.start,
            gpu_level: oracle_fn(b.start, b.end),
        })
        .collect();
    let plan = InstrumentationPlan::new(points, platform.cpu_table().max_level());
    let report = powerlens_lint::lint_pipeline(
        graph,
        &view,
        &plan,
        platform,
        batch,
        Some(&oracle_fn),
        &config,
    );
    powerlens_lint::record_to_obs(&report);
    Ok(report)
}

/// [`lint_model`] behind a [`LintCache`]: the reports for an unchanged
/// (graph, rule catalog, platform, batch) quadruple are served without
/// re-clustering or re-running the oracle. Shared by `powerlens-cli lint
/// --cache` and the daemon's `/lint` endpoint.
///
/// # Errors
///
/// Same as [`lint_model`]; errors are never cached.
pub fn lint_model_cached(
    platform: &Platform,
    graph: &Graph,
    batch: usize,
    cache: &LintCache,
) -> Result<Vec<LintReport>, String> {
    let key = lint_cache_key(graph, platform, batch);
    if let Some(reports) = cache.get(key) {
        return Ok(reports);
    }
    let reports = vec![lint_model(platform, graph, batch)?];
    cache.put(key, &reports);
    Ok(reports)
}

/// The bottom rung of the serving degradation ladder: a plan answering the
/// way a fully fallen-back [`Degraded`] controller would run.
///
/// Under sustained load `Degraded` hands control to BiM, and BiM's race
/// rule drives a saturated DNN workload to the maximum operating point.
/// This mirrors that steady state as a static plan — one power block
/// covering the whole graph, pinned at the top GPU and CPU levels — which
/// costs nothing to produce and is always safe to execute. Callers must
/// flag the response `degraded: true` so clients know to re-request a real
/// plan once the fleet calms down.
pub fn bim_heuristic_outcome(platform: &Platform, graph: &Graph) -> PlanOutcome {
    let n = graph.num_layers();
    PlanOutcome {
        view: PowerView::new(vec![PowerBlock { start: 0, end: n }]),
        plan: InstrumentationPlan::new(
            vec![InstrumentationPoint {
                layer: 0,
                gpu_level: platform.gpu_table().max_level(),
            }],
            platform.cpu_table().max_level(),
        ),
        scheme_index: 0,
        timings: WorkflowTimings::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_and_graph_resolution() {
        assert!(platform_by_name("agx").is_some());
        assert!(platform_by_name("tx2").is_some());
        assert!(platform_by_name("cloud").is_some());
        assert!(platform_by_name("orin").is_none());
        assert!(graph_by_name("alexnet").is_ok());
        assert!(graph_by_name("nope").unwrap_err().contains("unknown model"));
    }

    #[test]
    fn heuristic_outcome_covers_the_graph_at_max_levels() {
        let agx = Platform::agx();
        let g = zoo::alexnet();
        let o = bim_heuristic_outcome(&agx, &g);
        assert_eq!(o.view.num_layers(), g.num_layers());
        assert_eq!(o.plan.num_blocks(), 1);
        assert_eq!(o.plan.points()[0].gpu_level, agx.gpu_table().max_level());
        // The heuristic plan must actually run.
        let engine = Engine::new(&agx).with_batch(4);
        let mut ctl = PlanController::new(o.plan);
        let r = engine.run(&g, &mut ctl, 8);
        assert!(r.energy_efficiency > 0.0);
    }

    #[test]
    fn compare_produces_a_row_per_controller() {
        let agx = Platform::agx();
        let g = zoo::alexnet();
        let pl = make_planner(&agx, 4, None);
        let outcome = pl.plan_oracle(&g).unwrap();
        let rows = compare_controllers(&agx, &g, &outcome.plan, 4, 8, 2, None);
        assert_eq!(rows.len(), 4);
        assert!(
            rows[0].method.starts_with("powerlens("),
            "{}",
            rows[0].method
        );
        for r in &rows {
            assert!(
                r.energy_efficiency > 0.0,
                "{}: EE must be positive",
                r.method
            );
            assert!(r.energy_j > 0.0 && r.time_s > 0.0);
        }
        // Under faults the degraded wrapper joins the line-up.
        let fp = FaultPlan::parse("switch_fail=0.2").unwrap();
        let rows = compare_controllers(&agx, &g, &outcome.plan, 4, 8, 2, Some(&fp));
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn hybrid_row_is_opt_in_and_slots_in_after_powerlens() {
        let agx = Platform::agx();
        let g = zoo::alexnet();
        let pl = make_planner(&agx, 4, None);
        let outcome = pl.plan_oracle(&g).unwrap();
        let (rows, stats) =
            compare_controllers_hybrid(&agx, &g, &outcome.plan, 4, 8, 2, None, true);
        assert_eq!(rows.len(), 5);
        assert!(rows[0].method.starts_with("powerlens("));
        assert!(rows[1].method.starts_with("hybrid("), "{}", rows[1].method);
        let stats = stats.expect("hybrid stats reported when requested");
        assert_eq!(stats.drift_detected, 0, "clean run must not drift");
        // Clean run: the hybrid row replays the plan bit-for-bit.
        assert_eq!(rows[0].energy_j.to_bits(), rows[1].energy_j.to_bits());
        assert_eq!(rows[0].time_s.to_bits(), rows[1].time_s.to_bits());

        // Faulted + hybrid: degraded joins too (6 rows), stats still come
        // back.
        let fp = FaultPlan::parse("switch_fail=0.2,seed=7").unwrap();
        let (rows, stats) =
            compare_controllers_hybrid(&agx, &g, &outcome.plan, 4, 8, 2, Some(&fp), true);
        assert_eq!(rows.len(), 6);
        assert!(stats.is_some());
    }

    #[test]
    fn lint_model_is_clean_on_zoo_graphs() {
        let agx = Platform::agx();
        let g = zoo::alexnet();
        let report = lint_model(&agx, &g, 4).unwrap();
        assert!(!report.has_errors());
    }

    #[test]
    fn cached_lint_serves_warm_lookups_with_identical_reports() {
        let agx = Platform::agx();
        let g = zoo::alexnet();
        let cache = LintCache::mem_only();
        let cold = lint_model_cached(&agx, &g, 4, &cache).unwrap();
        let warm = lint_model_cached(&agx, &g, 4, &cache).unwrap();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cold.len(), warm.len());
        assert_eq!(cold[0].subject, warm[0].subject);
        assert_eq!(cold[0].codes(), warm[0].codes());
        // A different batch is a different content address.
        let _ = lint_model_cached(&agx, &g, 8, &cache).unwrap();
        assert_eq!(cache.misses(), 2);
    }
}
