//! `powerlens-cli` — command-line interface for the PowerLens framework.
//!
//! ```text
//! powerlens-cli zoo                         list the evaluation models
//! powerlens-cli inspect  <model>            layer table + cost summary
//! powerlens-cli sweep    <model> [opts]     EE at every GPU frequency level
//! powerlens-cli plan     <model> [opts]     power view + instrumentation plan
//! powerlens-cli compare  <model> [opts]     PowerLens vs BiM / FPG-G / FPG-CG
//! powerlens-cli train    [opts]             train + save prediction models
//! powerlens-cli serve    [opts]             planning-as-a-service HTTP daemon
//!
//! options:
//!   --platform agx|tx2|cloud   target board            (default agx)
//!   --batch N                  inference batch size    (default 8)
//!   --images N                 images per run          (default 48)
//!   --models PATH              use trained models from PATH (plan/compare)
//!   --nets N                   dataset networks for `train` (default 600)
//!   --out PATH                 output path for `train` (default powerlens_models.json)
//! ```

#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

// Exit codes (documented in `args::USAGE`): 0 success, 1 command failure
// (including error-severity lint findings), 2 argument errors, 3 lint
// findings not present in the `--baseline` SARIF file.
fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                if e.downcast_ref::<commands::BaselineViolation>().is_some() {
                    ExitCode::from(3)
                } else {
                    ExitCode::FAILURE
                }
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
