//! Property-based tests for Algorithm 1's components and invariants.

use powerlens_cluster::{
    cluster_graph, dbscan, power_distance_matrix, power_distance_matrix_reference,
    process_clusters, smooth_features, ClusterParams, DistanceCache,
};
use powerlens_dnn::random::{generate, RandomDnnConfig};
use powerlens_features::depthwise_features;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_graph(seed: u64) -> powerlens_dnn::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&RandomDnnConfig::default(), &mut rng)
}

/// Strategy for arbitrary DBSCAN-like label vectors.
fn labels() -> impl Strategy<Value = Vec<Option<usize>>> {
    proptest::collection::vec(proptest::option::of(0usize..4), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Post-processing always produces a contiguous tiling of the input.
    #[test]
    fn process_clusters_tiles_any_labelling(l in labels(), min_len in 1usize..5) {
        let view = process_clusters(&l, min_len);
        prop_assert_eq!(view.num_layers(), l.len());
        let mut expected_start = 0;
        for b in view.blocks() {
            prop_assert_eq!(b.start, expected_start);
            prop_assert!(!b.is_empty());
            expected_start = b.end;
        }
        prop_assert_eq!(expected_start, l.len());
    }

    /// Only the first block may be shorter than `min_len` (when the whole
    /// input is shorter); later blocks respect the floor because short runs
    /// merge backwards.
    #[test]
    fn process_clusters_merges_short_runs(l in labels(), min_len in 2usize..5) {
        let view = process_clusters(&l, min_len);
        for b in view.blocks().iter().skip(1) {
            prop_assert!(!b.is_empty(), "degenerate block {b:?}");
        }
    }

    /// The full Algorithm 1 tiles every random network for any scheme.
    #[test]
    fn cluster_graph_tiles_random_networks(seed in 0u64..3000, scheme in 0usize..4) {
        let g = random_graph(seed);
        let eps = [0.05, 0.15, 0.25, 0.40][scheme];
        let params = ClusterParams { epsilon: eps, ..ClusterParams::default() };
        let view = cluster_graph(&g, &params).unwrap();
        prop_assert_eq!(view.num_layers(), g.num_layers());
        let covered: usize = view.blocks().iter().map(|b| b.len()).sum();
        prop_assert_eq!(covered, g.num_layers());
        // block_of agrees with the tiling.
        for (i, b) in view.blocks().iter().enumerate() {
            prop_assert_eq!(view.block_of(b.start), Some(b), "block {}", i);
            prop_assert_eq!(view.block_of(b.end - 1), Some(b), "block {}", i);
        }
    }

    /// The blended power distance is a symmetric, finite, zero-diagonal
    /// matrix bounded by alpha + (1 - alpha) for any random network.
    #[test]
    fn distance_matrix_properties(seed in 0u64..3000, alpha in 0.0f64..1.0, lambda in 0.01f64..0.5) {
        let g = random_graph(seed);
        let x = depthwise_features(&g);
        let d = power_distance_matrix(&x, alpha, lambda).unwrap();
        prop_assert!(d.all_finite());
        prop_assert!(d.is_symmetric(1e-9));
        let n = d.rows();
        for i in 0..n {
            prop_assert_eq!(d[(i, i)], 0.0);
            for j in 0..n {
                prop_assert!(d[(i, j)] >= 0.0);
                prop_assert!(d[(i, j)] <= alpha + (1.0 - alpha) + 1e-9);
            }
        }
    }

    /// The whitened fast path agrees with the seed's per-pair Mahalanobis
    /// implementation element-wise on real graph features.
    #[test]
    fn whitened_distance_matches_reference(seed in 0u64..3000, alpha in 0.0f64..1.0) {
        let g = random_graph(seed);
        let x = depthwise_features(&g);
        let fast = power_distance_matrix(&x, alpha, 0.08).unwrap();
        let slow = power_distance_matrix_reference(&x, alpha, 0.08).unwrap();
        prop_assert_eq!(fast.rows(), slow.rows());
        for i in 0..fast.rows() {
            for j in 0..fast.cols() {
                prop_assert!(
                    (fast[(i, j)] - slow[(i, j)]).abs() < 1e-9,
                    "({}, {}): {} vs {}", i, j, fast[(i, j)], slow[(i, j)]
                );
            }
        }
    }

    /// Prefix-sum smoothing agrees with a naive window rescan.
    #[test]
    fn smoothing_matches_naive_rescan(seed in 0u64..3000, radius in 0usize..9) {
        let g = random_graph(seed);
        let x = depthwise_features(&g);
        let fast = smooth_features(&x, radius);
        // Naive reference: re-sum the window for every row.
        let n = x.rows();
        for i in 0..n {
            let lo = i.saturating_sub(radius);
            let hi = (i + radius + 1).min(n);
            let span = (hi - lo) as f64;
            for j in 0..x.cols() {
                let want: f64 = (lo..hi).map(|k| x[(k, j)]).sum::<f64>() / span;
                prop_assert!(
                    (fast[(i, j)] - want).abs() < 1e-9 * want.abs().max(1.0),
                    "({}, {}): {} vs {}", i, j, fast[(i, j)], want
                );
            }
        }
    }

    /// Sweep incrementality: a [`DistanceCache`] built once and re-clustered
    /// across a full ε×minPts grid must return exactly the views a
    /// from-scratch `cluster_graph` call produces at every grid point —
    /// the contract that lets `plan_oracle` pay the distance matrix once.
    /// Each point is also checked against plain `dbscan` +
    /// `process_clusters` over the cached matrix, which pins the cache's
    /// sweep-tuned DBSCAN (scratch-buffer region queries, visit-once
    /// queue) to the allocating reference implementation.
    #[test]
    fn distance_cache_sweep_equals_from_scratch(seed in 0u64..3000) {
        let g = random_graph(seed);
        let shape = ClusterParams::default();
        let cache = DistanceCache::build(&g, &shape).unwrap();
        prop_assert_eq!(cache.num_layers(), g.num_layers());
        for eps in [0.05, 0.10, 0.15, 0.25, 0.40] {
            for min_pts in [2usize, 4, 6] {
                let params = ClusterParams { epsilon: eps, min_pts, ..shape };
                prop_assert!(cache.matches(&params));
                let incremental = cache.cluster(&params);
                let scratch = cluster_graph(&g, &params).unwrap();
                prop_assert_eq!(
                    incremental.clone(), scratch,
                    "grid point (eps {}, minPts {})", eps, min_pts
                );
                let reference = process_clusters(
                    &dbscan(cache.distance(), eps, min_pts),
                    min_pts.max(2),
                );
                prop_assert_eq!(
                    incremental, reference,
                    "indexed vs matrix-scan DBSCAN at (eps {}, minPts {})", eps, min_pts
                );
            }
        }
    }

    /// DBSCAN labels are dense (0..k) and noise-only inputs yield no labels.
    #[test]
    fn dbscan_labels_are_dense(seed in 0u64..3000) {
        let g = random_graph(seed);
        let x = depthwise_features(&g);
        let d = power_distance_matrix(&x, 0.7, 0.08).unwrap();
        let labels = dbscan(&d, 0.15, 4);
        let max = labels.iter().flatten().copied().max();
        if let Some(max) = max {
            for c in 0..=max {
                prop_assert!(
                    labels.iter().flatten().any(|&l| l == c),
                    "cluster id {c} missing"
                );
            }
        }
    }
}
