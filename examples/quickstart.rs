//! Quickstart: plan and execute adaptive DVFS for one network.
//!
//! Builds ResNet-34, derives a PowerLens instrumentation plan with the
//! exhaustive oracle (no trained models needed), and compares the plan
//! against the board's built-in ondemand governor on the simulated Jetson
//! AGX Xavier.
//!
//! ```text
//! cargo run --release -p powerlens --example quickstart
//! ```

use powerlens::{PlanController, PowerLens, PowerLensConfig};
use powerlens_dnn::zoo;
use powerlens_governors::Bim;
use powerlens_platform::Platform;
use powerlens_sim::Engine;

fn main() {
    // 1. A simulated board and a model to optimize.
    let agx = Platform::agx();
    let model = zoo::resnet34();
    println!(
        "model: {} ({} layers, {:.1} GFLOPs)",
        model.name(),
        model.num_layers(),
        model.stats().total_flops / 1e9
    );

    // 2. Offline: cluster the network into power blocks and preset a target
    //    frequency before each block. `plan_oracle` uses exhaustive search;
    //    see `train_and_deploy.rs` for the learned-model workflow.
    let pl = PowerLens::untrained(&agx, PowerLensConfig::default());
    let outcome = pl.plan_oracle(&model).expect("well-formed network");
    println!("power view: {} block(s)", outcome.view.num_blocks());
    for (block, point) in outcome.view.blocks().iter().zip(outcome.plan.points()) {
        println!(
            "  layers {:>3}..{:<3} -> {:>5.0} MHz (level {})",
            block.start,
            block.end,
            agx.gpu_table().freq_mhz(point.gpu_level),
            point.gpu_level
        );
    }

    // 3. Runtime: execute 64 inferences under the plan and under ondemand.
    let engine = Engine::new(&agx).with_batch(8);
    let mut ours = PlanController::new(outcome.plan);
    let r_ours = engine.run(&model, &mut ours, 64);
    let mut bim = Bim::new(&agx);
    let r_bim = engine.run(&model, &mut bim, 64);

    println!();
    println!(
        "PowerLens: {:>6.2} img/J at {:>5.1} W ({:.2} s)",
        r_ours.energy_efficiency, r_ours.avg_power, r_ours.total_time
    );
    println!(
        "ondemand:  {:>6.2} img/J at {:>5.1} W ({:.2} s)",
        r_bim.energy_efficiency, r_bim.avg_power, r_bim.total_time
    );
    println!(
        "energy efficiency gain: {:+.1}%",
        (r_ours.energy_efficiency / r_bim.energy_efficiency - 1.0) * 100.0
    );
}
