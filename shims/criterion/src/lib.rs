//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API subset the `powerlens-bench` crate uses —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::sample_size`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! but honest measurement loop:
//!
//! 1. warm up for ~0.3 s,
//! 2. pick an iteration count so one sample takes ~5 ms,
//! 3. collect `sample_size` samples (default 50) and report the median and
//!    min/max per-iteration time.
//!
//! There is no statistical regression analysis, plotting, or saved
//! baselines; compare medians across runs by hand (see
//! `docs/OBSERVABILITY.md` for how the obs layer complements this for
//! intra-run profiling).
//!
//! # Example
//!
//! ```
//! use criterion::Criterion;
//!
//! let mut c = Criterion::default().with_quiet_profile();
//! c.bench_function("sum_1k", |b| {
//!     b.iter(|| (0..1000u64).map(criterion::black_box).sum::<u64>())
//! });
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement profile: how long to warm up and how many samples to take.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Profile {
    warmup: Duration,
    target_sample_time: Duration,
    sample_size: usize,
}

impl Profile {
    fn standard() -> Self {
        Profile {
            warmup: Duration::from_millis(300),
            target_sample_time: Duration::from_millis(5),
            sample_size: 50,
        }
    }

    /// A minimal profile for tests and doc-tests.
    fn quiet() -> Self {
        Profile {
            warmup: Duration::from_micros(100),
            target_sample_time: Duration::from_micros(100),
            sample_size: 5,
        }
    }
}

/// The benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    profile: Profile,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            profile: Profile::standard(),
        }
    }
}

impl Criterion {
    /// Switches to a minimal measurement profile (used by tests; keeps
    /// doc-tests fast).
    pub fn with_quiet_profile(mut self) -> Self {
        self.profile = Profile::quiet();
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.to_string(), self.profile, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let profile = self.profile;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            profile,
        }
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    profile: Profile,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.profile.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.profile, &mut f);
        self
    }

    /// Finishes the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; drives the measurement loop.
pub struct Bencher {
    profile: Profile,
    /// Median / min / max per-iteration time, filled by [`Bencher::iter`].
    result: Option<(f64, f64, f64)>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures the closure, recording per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses, counting
        // iterations to size the measurement samples.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.profile.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters = ((self.profile.target_sample_time.as_secs_f64() / per_iter.max(1e-9)).ceil()
            as u64)
            .max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(self.profile.sample_size);
        for _ in 0..self.profile.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        self.result = Some((median, samples[0], samples[samples.len() - 1]));
        self.iters_per_sample = iters;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_bench(name: &str, profile: Profile, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        profile,
        result: None,
        iters_per_sample: 0,
    };
    f(&mut b);
    match b.result {
        Some((median, min, max)) => println!(
            "{name:<40} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(max),
            profile.sample_size,
            b.iters_per_sample,
        ),
        None => println!("{name:<40} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a function running a list of benchmark functions
/// (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the `main` entry point for one or more benchmark groups
/// (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default().with_quiet_profile();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default().with_quiet_profile();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("a", |b| b.iter(|| black_box(0u64)));
        group.bench_function(format_args!("param_{}", 7), |b| b.iter(|| black_box(0u64)));
        group.finish();
    }

    #[test]
    fn macros_expand() {
        fn bench_a(c: &mut Criterion) {
            c.bench_function("macro_a", |b| b.iter(|| black_box(2 * 2)));
        }
        criterion_group!(benches, bench_a);
        // criterion_main! would define `main`; just run the group here.
        benches();
    }
}
