//! Subcommand implementations.
//!
//! The CLI is a thin frontend: the actual plan/compare/lint logic lives in
//! [`powerlens_serve::ops`], shared with the serving daemon, and the
//! functions here only parse options, call into `ops`, and render tables.

use std::error::Error;
use std::path::{Path, PathBuf};

use powerlens::dataset::{self, DatasetConfig};
use powerlens::training::{train_models, TrainingConfig};
use powerlens::{PlanController, PowerLens, PowerLensConfig, TrainedModels};
use powerlens_dnn::{zoo, Graph};
use powerlens_faults::FaultPlan;
use powerlens_governors::{Bim, HybridConfig, HybridGovernor};
use powerlens_obs as obs;
use powerlens_obs::TraceMode;
use powerlens_platform::Platform;
use powerlens_serve::{ops, ServeConfig, Server};
use powerlens_sim::{run_taskflow, Degraded, Engine, TaskFlowReport, TaskSpec};
use powerlens_store::{CacheMode, LintCache, PlanStore};

use crate::args::{Command, Options};

type CliResult = Result<(), Box<dyn Error>>;

/// Typed failure for the `lint --baseline` ratchet, so `main` can answer
/// with its own exit code (3) — distinct from error-severity findings (1)
/// and argument errors (2). CI distinguishes "the code got worse" from
/// "the code was already bad".
#[derive(Debug)]
pub struct BaselineViolation {
    /// Findings whose fingerprints are absent from the baseline.
    pub new_findings: usize,
}

impl std::fmt::Display for BaselineViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lint found {} finding(s) not present in the baseline \
             (regenerate it with `lint --all --format sarif` to ratchet)",
            self.new_findings
        )
    }
}

impl Error for BaselineViolation {}

/// Dispatches a parsed command.
///
/// Initializes the observability layer from the command's `--trace` option
/// before running it, and prints the collected stats summary (plus the JSON
/// report path in `json` mode) afterwards.
pub fn run(cmd: Command) -> CliResult {
    let trace = match &cmd {
        Command::Zoo | Command::Inspect { .. } | Command::Stats { .. } => TraceMode::Off,
        Command::Import { opts, .. }
        | Command::Sweep { opts, .. }
        | Command::Plan { opts, .. }
        | Command::PlanBatch { opts, .. }
        | Command::Compare { opts, .. }
        | Command::Train { opts }
        | Command::Trace { opts, .. }
        | Command::FaultSim { opts, .. }
        | Command::HybridSim { opts, .. }
        | Command::Lint { opts, .. }
        | Command::Serve { opts } => opts.trace,
    };
    obs::init(trace);
    let result = match cmd {
        Command::Zoo => zoo_cmd(),
        Command::Inspect { model } => inspect(&model),
        Command::Import { path, opts } => import_cmd(&path, &opts),
        Command::Sweep { model, opts } => sweep(&model, &opts),
        Command::Plan { model, opts } => plan(&model, &opts),
        Command::PlanBatch { models, opts } => plan_batch_cmd(&models, &opts),
        Command::Compare { model, opts } => compare(&model, &opts),
        Command::Train { opts } => train(&opts),
        Command::Trace { model, opts } => trace_cmd(&model, &opts),
        Command::FaultSim { model, opts } => faultsim(&model, &opts),
        Command::HybridSim { model, opts } => hybridsim(&model, &opts),
        Command::Lint { model, opts } => lint_cmd(model.as_deref(), &opts),
        Command::Stats { path } => return stats(path.as_deref()),
        Command::Serve { opts } => serve_cmd(&opts),
    };
    report_stats(trace);
    result
}

/// Prints the end-of-command observability summary.
fn report_stats(trace: TraceMode) {
    if trace == TraceMode::Off {
        return;
    }
    println!("--- obs stats ---");
    print!("{}", obs::snapshot().render_table());
    match obs::flush() {
        Ok(Some(path)) => println!("obs: wrote trace report to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("obs: failed to write trace report: {e}"),
    }
}

fn platform_for(opts: &Options) -> Platform {
    // The parser already validated the name; default to AGX defensively.
    ops::platform_by_name(&opts.platform).unwrap_or_else(Platform::agx)
}

fn model_for(name: &str) -> Result<Graph, Box<dyn Error>> {
    Ok(ops::graph_by_name(name)?)
}

/// Imports an external manifest through the ingest lint gate (`PL7xx`):
/// warnings print to stderr, error findings abort before the graph reaches
/// the planner.
fn import_gated(path: &str) -> Result<Graph, Box<dyn Error>> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read manifest {path}: {e}"))?;
    let (result, report) =
        powerlens_ingest::import_and_lint(path, &text, &powerlens_lint::LintConfig::default());
    for d in &report.diagnostics {
        if d.rule.severity != powerlens_lint::Severity::Error {
            eprintln!("warning[{}]: {}", d.rule.code, d.message);
        }
    }
    match result {
        Ok(import) => Ok(import.graph),
        Err(e) => Err(format!("cannot import {path}: {e}").into()),
    }
}

/// Resolves the graph a subcommand runs on: `--model PATH` imports an
/// external manifest, otherwise `name` is a zoo model.
fn graph_for(name: &str, opts: &Options) -> Result<Graph, Box<dyn Error>> {
    match &opts.model {
        Some(path) => import_gated(path),
        None => model_for(name),
    }
}

fn trained_models_for(opts: &Options) -> Result<Option<TrainedModels>, Box<dyn Error>> {
    match &opts.models {
        Some(path) => Ok(Some(ops::load_models(Path::new(path))?)),
        None => Ok(None),
    }
}

fn planner<'p>(platform: &'p Platform, opts: &Options) -> Result<PowerLens<'p>, Box<dyn Error>> {
    Ok(ops::make_planner(
        platform,
        opts.batch,
        trained_models_for(opts)?,
    ))
}

/// Builds the fault plan described by `--faults` / `--fault-seed`, gated
/// through the lint faults pack (PL4xx): error findings abort before a
/// single fault is injected, warnings print to stderr. `None` when the
/// command runs clean.
fn fault_plan_for(
    opts: &Options,
    platform: &Platform,
) -> Result<Option<FaultPlan>, Box<dyn Error>> {
    let Some(spec) = &opts.faults else {
        return Ok(None);
    };
    let mut plan = FaultPlan::parse(spec)?;
    if let Some(seed) = opts.fault_seed {
        plan = plan.with_seed(seed);
    }
    let report = powerlens_lint::lint_fault_plan(
        &plan,
        Some(platform),
        &powerlens_lint::LintConfig::default(),
    );
    for d in &report.diagnostics {
        if d.rule.severity != powerlens_lint::Severity::Error {
            eprintln!("warning[{}]: {}", d.rule.code, d.message);
        }
    }
    if report.has_errors() {
        let msgs: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule.severity == powerlens_lint::Severity::Error)
            .map(|d| format!("{}: {}", d.rule.code, d.message))
            .collect();
        return Err(format!("invalid fault plan: {}", msgs.join("; ")).into());
    }
    Ok(Some(plan))
}

/// Builds the plan store described by `--cache` / `--cache-dir`.
fn store_for(opts: &Options) -> Result<PlanStore, Box<dyn Error>> {
    let mode = CacheMode::parse(&opts.cache)
        .ok_or_else(|| format!("unknown cache mode {:?}", opts.cache))?;
    let dir = (mode == CacheMode::Disk).then(|| Path::new(&opts.cache_dir));
    Ok(PlanStore::new(mode, 128, dir)?)
}

/// Plans `graph` through the configured cache (model-driven when models are
/// loaded, exhaustive oracle search otherwise).
fn plan_cached(
    pl: &PowerLens<'_>,
    graph: &Graph,
    opts: &Options,
) -> Result<powerlens::PlanOutcome, Box<dyn Error>> {
    Ok(store_for(opts)?.get_or_plan(pl, graph)?)
}

fn zoo_cmd() -> CliResult {
    println!(
        "{:<16} {:>7} {:>10} {:>10} {:>8}",
        "model", "layers", "GFLOPs", "Mparams", "skips"
    );
    for (name, build) in zoo::all_models() {
        let g = build();
        let s = g.stats();
        println!(
            "{:<16} {:>7} {:>10.2} {:>10.1} {:>8}",
            name,
            g.num_layers(),
            s.total_flops / 1e9,
            s.total_params / 1e6,
            s.num_skip_edges
        );
    }
    Ok(())
}

fn inspect(model: &str) -> CliResult {
    let g = model_for(model)?;
    println!("{g}");
    let s = g.stats();
    println!(
        "total: {:.2} GFLOPs, {:.1} M params, {:.1} MB traffic/sample, mean AI {:.1} FLOP/B",
        s.total_flops / 1e9,
        s.total_params / 1e6,
        s.total_memory_bytes / 1e6,
        s.mean_arithmetic_intensity
    );
    Ok(())
}

/// Imports a manifest, prints the full `PL7xx` report in the `--format` of
/// choice, and — when the gate passes — the lowered layer table plus the
/// content fingerprint the plan cache will key on.
fn import_cmd(path: &str, opts: &Options) -> CliResult {
    let format = powerlens_lint::Format::parse(&opts.format)
        .ok_or_else(|| format!("unknown lint format {:?}", opts.format))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read manifest {path}: {e}"))?;
    let (result, report) =
        powerlens_ingest::import_and_lint(path, &text, &powerlens_lint::LintConfig::default());
    print!(
        "{}",
        powerlens_lint::render(std::slice::from_ref(&report), format)
    );
    let import = result.map_err(|e| format!("cannot import {path}: {e}"))?;
    let g = &import.graph;
    println!("{g}");
    let s = g.stats();
    println!(
        "total: {:.2} GFLOPs, {:.1} M params, {:.1} MB traffic/sample, mean AI {:.1} FLOP/B",
        s.total_flops / 1e9,
        s.total_params / 1e6,
        s.total_memory_bytes / 1e6,
        s.mean_arithmetic_intensity
    );
    println!(
        "imported {:?} from {path}: {} layer(s), fingerprint {:016x}",
        g.name(),
        g.num_layers(),
        g.fingerprint()
    );
    Ok(())
}

fn sweep(model: &str, opts: &Options) -> CliResult {
    let platform = platform_for(opts);
    let g = graph_for(model, opts)?;
    let model = if model.is_empty() {
        g.name().to_string()
    } else {
        model.to_string()
    };
    let engine = Engine::new(&platform).with_batch(opts.batch);
    let reports = engine.sweep_gpu_levels(&g, opts.images);
    println!(
        "{model} on {} (batch {}, {} images)",
        platform.name(),
        opts.batch,
        opts.images
    );
    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>11}",
        "level", "MHz", "FPS", "watts", "img/J"
    );
    let best = reports
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.energy_efficiency.total_cmp(&b.1.energy_efficiency))
        .map(|(i, _)| i)
        .unwrap_or(0);
    for (level, r) in reports.iter().enumerate() {
        println!(
            "{:>5} {:>9.0} {:>9.2} {:>9.2} {:>11.3}{}",
            level,
            platform.gpu_table().freq_mhz(level),
            r.fps,
            r.avg_power,
            r.energy_efficiency,
            if level == best { "  <- best EE" } else { "" }
        );
    }
    Ok(())
}

fn plan(model: &str, opts: &Options) -> CliResult {
    let platform = platform_for(opts);
    let g = graph_for(model, opts)?;
    let model = if model.is_empty() {
        g.name().to_string()
    } else {
        model.to_string()
    };
    let pl = planner(&platform, opts)?;
    let outcome = plan_cached(&pl, &g, opts)?;
    println!(
        "{model} on {}: {} power block(s), scheme #{}",
        platform.name(),
        outcome.plan.num_blocks(),
        outcome.scheme_index
    );
    for (block, point) in outcome.view.blocks().iter().zip(outcome.plan.points()) {
        let feats = powerlens_features::GlobalFeatures::of_range(&g, block.start, block.end);
        println!(
            "  layers {:>4}..{:<4} {:>5.0} MHz (level {:>2})  {:>8.2} GFLOPs, AI {:>6.1}",
            block.start,
            block.end,
            platform.gpu_table().freq_mhz(point.gpu_level),
            point.gpu_level,
            feats.statistics[0].exp_m1() / 1e9,
            feats.statistics[3]
        );
    }
    // Validate the plan with a short simulated run so the printed numbers
    // (and, under --trace, the sim.* metrics) reflect actual execution.
    let engine = Engine::new(&platform).with_batch(opts.batch);
    let mut ctl = PlanController::new(outcome.plan);
    let report = engine.run(&g, &mut ctl, opts.images);
    println!(
        "predicted ({} images): {:.2} FPS, {:.2} W, {:.3} img/J",
        opts.images, report.fps, report.avg_power, report.energy_efficiency
    );
    Ok(())
}

/// Plans a list of models (default: the whole zoo) through one shared plan
/// store, fanning the work out over worker threads. Repeated graphs are
/// planned once and served from cache afterwards.
fn plan_batch_cmd(models: &[String], opts: &Options) -> CliResult {
    let platform = platform_for(opts);
    let (mut names, mut graphs): (Vec<String>, Vec<Graph>) =
        if models.is_empty() && opts.model.is_none() {
            zoo::all_models()
                .iter()
                .map(|(name, build)| ((*name).to_string(), build()))
                .unzip()
        } else {
            let mut names = Vec::with_capacity(models.len());
            let mut graphs = Vec::with_capacity(models.len());
            for name in models {
                names.push(name.clone());
                graphs.push(model_for(name)?);
            }
            (names, graphs)
        };
    if let Some(path) = &opts.model {
        let g = import_gated(path)?;
        names.push(g.name().to_string());
        graphs.push(g);
    }

    let pl = planner(&platform, opts)?;
    let store = store_for(opts)?;
    let started = std::time::Instant::now();
    let results = powerlens_store::plan_batch(&store, &pl, &graphs, opts.threads);
    let elapsed = started.elapsed();

    println!(
        "planning {} model(s) on {} (cache {}, batch {})",
        names.len(),
        platform.name(),
        store.mode(),
        opts.batch
    );
    println!("{:<16} {:>7} {:>7}  outcome", "model", "blocks", "scheme");
    let mut failures = 0usize;
    for (name, result) in names.iter().zip(&results) {
        match result {
            Ok(outcome) => println!(
                "{:<16} {:>7} {:>7}  ok",
                name,
                outcome.plan.num_blocks(),
                outcome.scheme_index
            ),
            Err(e) => {
                failures += 1;
                println!("{name:<16} {:>7} {:>7}  error: {e}", "-", "-");
            }
        }
    }
    println!(
        "planned {} model(s) in {:.3} s ({} resident in memory tier)",
        names.len() - failures,
        elapsed.as_secs_f64(),
        store.resident()
    );
    if failures > 0 {
        return Err(format!("{failures} of {} plan(s) failed", names.len()).into());
    }
    Ok(())
}

/// Tasks per comparison flow (the paper's Figure 5 uses 10-task queues).
const COMPARE_TASKS: usize = 10;

fn compare(model: &str, opts: &Options) -> CliResult {
    let platform = platform_for(opts);
    let g = graph_for(model, opts)?;
    let model = if model.is_empty() {
        g.name().to_string()
    } else {
        model.to_string()
    };
    let pl = planner(&platform, opts)?;
    let outcome = plan_cached(&pl, &g, opts)?;
    let fault_plan = fault_plan_for(opts, &platform)?;

    println!(
        "{model} on {} ({COMPARE_TASKS} x {} images, batch {}):",
        platform.name(),
        opts.images,
        opts.batch
    );
    if let Some(plan) = &fault_plan {
        println!("faults: {plan}");
    }
    println!(
        "{:<22} {:>11} {:>9} {:>11} {:>9}",
        "method", "energy (J)", "time (s)", "EE (img/J)", "switches"
    );
    let (rows, hybrid_stats) = ops::compare_controllers_hybrid(
        &platform,
        &g,
        &outcome.plan,
        opts.batch,
        opts.images,
        COMPARE_TASKS,
        fault_plan.as_ref(),
        opts.hybrid,
    );
    let mut base = None;
    for r in rows {
        let note = match base {
            None => {
                base = Some(r.energy_efficiency);
                String::new()
            }
            Some(b) => format!(
                "  ({:+.1}% vs PowerLens)",
                (b / r.energy_efficiency - 1.0) * 100.0
            ),
        };
        println!(
            "{:<22} {:>11.1} {:>9.2} {:>11.4} {:>9}{}",
            r.method, r.energy_j, r.time_s, r.energy_efficiency, r.switches, note
        );
    }
    if let Some(s) = hybrid_stats {
        println!(
            "hybrid ladder: drift={} nudges={} replans={} throttled={}",
            s.drift_detected, s.nudges, s.replans, s.replan_throttled
        );
    }
    Ok(())
}

fn trace_cmd(model: &str, opts: &Options) -> CliResult {
    let platform = platform_for(opts);
    let g = graph_for(model, opts)?;
    let model = if model.is_empty() {
        g.name().to_string()
    } else {
        model.to_string()
    };
    let pl = planner(&platform, opts)?;
    let outcome = plan_cached(&pl, &g, opts)?;
    let mut engine = Engine::new(&platform).with_batch(opts.batch);
    if let Some(plan) = fault_plan_for(opts, &platform)? {
        println!("faults: {plan}");
        engine = engine.with_faults(plan);
    }
    let mut ctl = PlanController::new(outcome.plan);
    let report = engine.run(&g, &mut ctl, opts.images);
    let path = if opts.out == "powerlens_models.json" {
        format!("{model}_{}.trace.csv", platform.name())
    } else {
        opts.out.clone()
    };
    let file = std::fs::File::create(&path)?;
    powerlens_sim::write_trace_csv(&report, std::io::BufWriter::new(file))?;
    println!(
        "wrote {} telemetry samples to {path} (EE {:.3} img/J)",
        report.telemetry.samples().len(),
        report.energy_efficiency
    );
    Ok(())
}

/// Fault spec `faultsim` sweeps when `--faults` is not given: a 20%
/// switch-failure storm with sensor dropout and measurement noise.
const DEFAULT_FAULTSIM_SPEC: &str = "switch_fail=0.2,retries=1,drop=0.05,noise=0.05";

/// Tasks per faultsim leg: enough repeated plan executions that the
/// per-switch fault streams are actually exercised.
const FAULTSIM_TASKS: usize = 8;

/// Robustness report: runs the PowerLens plan, its degraded wrapper
/// (falling back to BiM), and BiM itself — each through an 8-task flow,
/// once clean and once under the seeded fault plan — and reports how much
/// energy efficiency each controller retains. The
/// `ee_retention <controller> <value>` lines are stable output consumed by
/// `scripts/bench.sh`.
fn faultsim(model: &str, opts: &Options) -> CliResult {
    let platform = platform_for(opts);
    let g = graph_for(model, opts)?;
    let model = if model.is_empty() {
        g.name().to_string()
    } else {
        model.to_string()
    };
    let pl = planner(&platform, opts)?;
    let outcome = plan_cached(&pl, &g, opts)?;

    let mut spec_opts = opts.clone();
    if spec_opts.faults.is_none() {
        spec_opts.faults = Some(DEFAULT_FAULTSIM_SPEC.to_string());
    }
    let fault_plan =
        fault_plan_for(&spec_opts, &platform)?.expect("faultsim always has a fault spec");

    let clean = Engine::new(&platform).with_batch(opts.batch);
    let faulted = Engine::new(&platform)
        .with_batch(opts.batch)
        .with_faults(fault_plan.clone());
    let tasks: Vec<TaskSpec<'_>> = (0..FAULTSIM_TASKS)
        .map(|_| TaskSpec {
            graph: &g,
            images: opts.images,
        })
        .collect();

    // Each row runs fresh controllers so no state leaks between legs; the
    // degraded row additionally reports how often the fallback tripped.
    type Row = (&'static str, TaskFlowReport, TaskFlowReport, Option<usize>);
    let plan_for_row = outcome.plan;
    let plan_for_row_hybrid = plan_for_row.clone();
    let mut rows: Vec<Row> = Vec::new();
    {
        let mut leg = PlanController::new(plan_for_row.clone());
        let c = run_taskflow(&clean, &tasks, &mut leg);
        let mut leg = PlanController::new(plan_for_row.clone());
        let f = run_taskflow(&faulted, &tasks, &mut leg);
        rows.push(("powerlens", c, f, None));
    }
    {
        let mut leg = Degraded::new(
            PlanController::new(plan_for_row.clone()),
            Bim::new(&platform),
        );
        let c = run_taskflow(&clean, &tasks, &mut leg);
        let mut leg = Degraded::new(PlanController::new(plan_for_row), Bim::new(&platform));
        let f = run_taskflow(&faulted, &tasks, &mut leg);
        rows.push(("degraded", c, f, Some(leg.num_fallbacks())));
    }
    if opts.hybrid {
        let mut leg = HybridGovernor::new(
            &platform,
            plan_for_row_hybrid.clone(),
            opts.batch,
            HybridConfig::default(),
        );
        let c = run_taskflow(&clean, &tasks, &mut leg);
        let mut leg = HybridGovernor::new(
            &platform,
            plan_for_row_hybrid,
            opts.batch,
            HybridConfig::default(),
        );
        let f = run_taskflow(&faulted, &tasks, &mut leg);
        rows.push(("hybrid", c, f, None));
    }
    {
        let mut leg = Bim::new(&platform);
        let c = run_taskflow(&clean, &tasks, &mut leg);
        let mut leg = Bim::new(&platform);
        let f = run_taskflow(&faulted, &tasks, &mut leg);
        rows.push(("bim", c, f, None));
    }

    println!(
        "{model} on {} ({FAULTSIM_TASKS} x {} images, batch {})",
        platform.name(),
        opts.images,
        opts.batch
    );
    println!("faults: {fault_plan}");
    println!(
        "{:<22} {:>11} {:>11} {:>10} {:>9} {:>7} {:>9} {:>9}",
        "controller",
        "clean img/J",
        "fault img/J",
        "retention",
        "switches",
        "failed",
        "injected",
        "fallbacks"
    );

    let mut retentions: Vec<(String, f64)> = Vec::new();
    for (which, c, f, fallbacks) in rows {
        let retention = if c.energy_efficiency > 0.0 {
            f.energy_efficiency / c.energy_efficiency
        } else {
            0.0
        };
        println!(
            "{:<22} {:>11.4} {:>11.4} {:>9.1}% {:>9} {:>7} {:>9} {:>9}",
            which,
            c.energy_efficiency,
            f.energy_efficiency,
            retention * 100.0,
            f.num_switches,
            f.num_failed_switches,
            f.faults_injected,
            fallbacks.map_or_else(|| "-".to_string(), |n| n.to_string()),
        );
        retentions.push((which.to_string(), retention));
    }

    // Greppable summary lines (consumed by scripts/bench.sh).
    for (name, retention) in &retentions {
        println!("ee_retention {name} {retention:.4}");
    }
    let bim_floor = retentions
        .iter()
        .find(|(n, _)| n == "bim")
        .map_or(0.0, |(_, r)| *r);
    let degraded_r = retentions
        .iter()
        .find(|(n, _)| n == "degraded")
        .map_or(0.0, |(_, r)| *r);
    if degraded_r + 1e-9 >= bim_floor * 0.9 {
        println!("robustness: degraded controller holds the BiM floor");
    } else {
        println!(
            "robustness: WARNING degraded retention {degraded_r:.3} fell below \
             90% of the BiM floor {bim_floor:.3}"
        );
    }
    Ok(())
}

/// Storm `hybridsim` injects when `--faults` is not given: the acceptance
/// scenario from the robustness docs — a seeded 20% switch-failure storm
/// with one retry per switch.
const DEFAULT_HYBRIDSIM_SPEC: &str = "switch_fail=0.2,retries=1";

/// Tasks per hybridsim leg (matches faultsim).
const HYBRIDSIM_TASKS: usize = 8;

/// Workload phase change hybridsim injects mid-trace when the spec does not
/// carry its own `phase=`: +30% sustained power drift.
const HYBRIDSIM_PHASE_DRIFT: f64 = 0.3;

/// Online-adaptation report: the static PowerLens plan, the hybrid governor
/// (plan + drift detection + bounded re-planning through the plan store),
/// and BiM each run an 8-task flow once clean and once under a seeded fault
/// storm with a mid-trace workload phase change. Reports per-controller
/// energy-efficiency *recovery* — faulted EE normalized by the clean static
/// plan's EE, one shared denominator so rows compare directly. The
/// `ee_recovery <controller> <value>` lines are stable output consumed by
/// `scripts/bench.sh` and `scripts/check.sh`.
fn hybridsim(model: &str, opts: &Options) -> CliResult {
    let platform = platform_for(opts);
    let g = graph_for(model, opts)?;
    let model = if model.is_empty() {
        g.name().to_string()
    } else {
        model.to_string()
    };
    let pl = planner(&platform, opts)?;
    let store = store_for(opts)?;
    let outcome = store.get_or_plan(&pl, &g)?;

    let tasks: Vec<TaskSpec<'_>> = (0..HYBRIDSIM_TASKS)
        .map(|_| TaskSpec {
            graph: &g,
            images: opts.images,
        })
        .collect();
    let clean = Engine::new(&platform).with_batch(opts.batch);

    // Clean static-plan leg first: its EE is the recovery denominator, and
    // its midpoint anchors the phase change in simulated time.
    let mut leg = PlanController::new(outcome.plan.clone());
    let plan_clean = run_taskflow(&clean, &tasks, &mut leg);

    let mut spec_opts = opts.clone();
    if spec_opts.faults.is_none() {
        spec_opts.faults = Some(DEFAULT_HYBRIDSIM_SPEC.to_string());
    }
    let mut fault_plan =
        fault_plan_for(&spec_opts, &platform)?.expect("hybridsim always has a fault spec");
    if fault_plan.phase_power_drift == 0.0 {
        fault_plan.phase_power_drift = HYBRIDSIM_PHASE_DRIFT;
        fault_plan.phase_at_s = plan_clean.total_time / 2.0;
    }
    let faulted = Engine::new(&platform)
        .with_batch(opts.batch)
        .with_faults(fault_plan.clone());

    let mut leg = PlanController::new(outcome.plan.clone());
    let plan_faulted = run_taskflow(&faulted, &tasks, &mut leg);

    // The hybrid legs re-plan through the store under drift epochs; the
    // planner is deterministic, so a granted re-plan restores the original
    // operating points (dropping accumulated nudges) rather than inventing
    // new ones.
    let run_hybrid = |engine: &Engine<'_>| {
        let mut hook_err = None;
        let report;
        let stats;
        {
            let mut leg = HybridGovernor::new(
                &platform,
                outcome.plan.clone(),
                opts.batch,
                HybridConfig::default(),
            )
            .with_replan_hook(Box::new(|graph, epoch| {
                match store.lookup_or_plan_epoch(&pl, graph, None, epoch) {
                    Ok((o, _)) => Some(o.plan),
                    Err(e) => {
                        hook_err = Some(e.to_string());
                        None
                    }
                }
            }));
            report = run_taskflow(engine, &tasks, &mut leg);
            stats = leg.stats();
        }
        if let Some(e) = hook_err {
            eprintln!("warning: re-plan hook failed, ladder fell back to reset: {e}");
        }
        (report, stats)
    };
    let (hybrid_clean, _) = run_hybrid(&clean);
    let (hybrid_faulted, stats) = run_hybrid(&faulted);

    let mut leg = Bim::new(&platform);
    let bim_clean = run_taskflow(&clean, &tasks, &mut leg);
    let mut leg = Bim::new(&platform);
    let bim_faulted = run_taskflow(&faulted, &tasks, &mut leg);

    println!(
        "{model} on {} ({HYBRIDSIM_TASKS} x {} images, batch {})",
        platform.name(),
        opts.images,
        opts.batch
    );
    println!("faults: {fault_plan}");
    println!(
        "{:<22} {:>11} {:>11} {:>9} {:>9} {:>7} {:>9}",
        "controller", "clean img/J", "fault img/J", "recovery", "switches", "failed", "injected"
    );
    let denom = plan_clean.energy_efficiency.max(f64::MIN_POSITIVE);
    let rows = [
        ("powerlens", &plan_clean, &plan_faulted),
        ("hybrid", &hybrid_clean, &hybrid_faulted),
        ("bim", &bim_clean, &bim_faulted),
    ];
    for (name, c, f) in rows {
        println!(
            "{:<22} {:>11.4} {:>11.4} {:>8.1}% {:>9} {:>7} {:>9}",
            name,
            c.energy_efficiency,
            f.energy_efficiency,
            f.energy_efficiency / denom * 100.0,
            f.num_switches,
            f.num_failed_switches,
            f.faults_injected,
        );
    }
    println!(
        "hybrid ladder: drift={} nudges={} replans={} throttled={}",
        stats.drift_detected, stats.nudges, stats.replans, stats.replan_throttled
    );

    // Greppable summary lines (consumed by scripts/bench.sh).
    for (name, _, f) in rows {
        println!("ee_recovery {name} {:.4}", f.energy_efficiency / denom);
    }
    let (plan_f, hybrid_f, bim_f) = (
        plan_faulted.energy_efficiency,
        hybrid_faulted.energy_efficiency,
        bim_faulted.energy_efficiency,
    );
    if hybrid_f + 1e-9 >= plan_f && hybrid_f + 1e-9 >= 0.9 * bim_f {
        println!("adaptation: hybrid holds the static-plan and BiM floors");
    } else {
        println!(
            "adaptation: WARNING hybrid EE {hybrid_f:.4} under faults fell below \
             the static plan ({plan_f:.4}) or 90% of BiM ({bim_f:.4})"
        );
    }
    Ok(())
}

/// Lints one model (or the whole zoo) end to end: graph pack, the view
/// produced by clustering, an oracle-derived instrumentation plan with the
/// `PL209` cross-check enabled, and the `PL5xx` dataflow pack.
///
/// Exit behaviour (documented in the usage text): error-severity findings
/// fail with code 1. With `--baseline FILE`, findings of *any* severity
/// whose fingerprints are absent from the SARIF baseline additionally fail
/// with code 3 — the ratchet gate `scripts/check.sh` runs in CI. With
/// `--cache mem|disk`, reports for unchanged graphs are served from the
/// [`LintCache`] (the disk tier lives under `<cache-dir>/lint`).
fn lint_cmd(model: Option<&str>, opts: &Options) -> CliResult {
    let platform = platform_for(opts);
    let format = powerlens_lint::Format::parse(&opts.format)
        .ok_or_else(|| format!("unknown lint format {:?}", opts.format))?;
    let targets: Vec<Graph> = match (model, &opts.model) {
        (Some(name), _) => vec![model_for(name)?],
        (None, Some(path)) => vec![import_gated(path)?],
        (None, None) => zoo::all_models().iter().map(|(_, build)| build()).collect(),
    };
    let cache = match opts.cache.as_str() {
        "mem" => Some(LintCache::mem_only()),
        "disk" => Some(LintCache::with_disk(
            &Path::new(&opts.cache_dir).join("lint"),
        )?),
        _ => None,
    };

    let mut reports = Vec::new();
    for g in &targets {
        match &cache {
            Some(c) => reports.extend(ops::lint_model_cached(&platform, g, opts.batch, c)?),
            None => reports.push(ops::lint_model(&platform, g, opts.batch)?),
        }
    }
    if let Some(c) = &cache {
        eprintln!("lint cache: hits={} misses={}", c.hits(), c.misses());
    }

    print!("{}", powerlens_lint::render(&reports, format));
    let errors: usize = reports.iter().map(|r| r.num_errors()).sum();
    if errors > 0 {
        let failed = reports.iter().filter(|r| r.has_errors()).count();
        return Err(format!(
            "lint found {errors} error(s) in {failed} of {} subject(s)",
            reports.len()
        )
        .into());
    }
    if let Some(path) = opts.baseline.as_deref() {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let baseline = powerlens_lint::baseline_fingerprints(&text)
            .map_err(|e| format!("baseline {path}: {e}"))?;
        let fresh = powerlens_lint::new_findings(&reports, &baseline);
        if !fresh.is_empty() {
            for f in &fresh {
                eprintln!("new vs baseline: {}: {}", f.subject, f.line);
            }
            return Err(Box::new(BaselineViolation {
                new_findings: fresh.len(),
            }));
        }
        println!(
            "baseline: no new findings ({} grandfathered fingerprint(s))",
            baseline.len()
        );
    }
    Ok(())
}

/// Reads a `--trace json` report back from disk and re-renders its stats
/// table (default path matches what `--trace json` writes).
fn stats(path: Option<&str>) -> CliResult {
    use powerlens_obs::{HistogramStats, Snapshot, SpanStats, TRACE_SCHEMA_VERSION};
    use serde::Value;

    fn num(v: &Value) -> Result<f64, Box<dyn Error>> {
        match v {
            Value::Num(n) => Ok(*n),
            // non-finite floats are exported as `null`
            Value::Null => Ok(f64::NAN),
            other => Err(format!("expected number, found {}", other.kind()).into()),
        }
    }
    fn entries(v: &Value) -> Result<&[(String, Value)], Box<dyn Error>> {
        match v {
            Value::Object(fields) => Ok(fields),
            other => Err(format!("expected object, found {}", other.kind()).into()),
        }
    }

    let path = path.unwrap_or("results/trace.json");
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read trace report {path}: {e}"))?;
    let root: Value = serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse trace report {path}: {e}"))?;

    let version = num(root.field("powerlens_trace_version")?)?;
    if version != f64::from(TRACE_SCHEMA_VERSION) {
        return Err(format!(
            "trace report {path} has schema version {version}, this build reads version {TRACE_SCHEMA_VERSION}"
        )
        .into());
    }

    let mut snap = Snapshot::default();
    for (name, v) in entries(root.field("spans")?)? {
        snap.spans.insert(
            name.clone(),
            SpanStats {
                count: num(v.field("count")?)? as u64,
                total_ns: num(v.field("total_ns")?)? as u128,
                min_ns: num(v.field("min_ns")?)? as u128,
                max_ns: num(v.field("max_ns")?)? as u128,
            },
        );
    }
    for (name, v) in entries(root.field("counters")?)? {
        snap.counters.insert(name.clone(), num(v)? as u64);
    }
    for (name, v) in entries(root.field("gauges")?)? {
        snap.gauges.insert(name.clone(), num(v)?);
    }
    for (name, v) in entries(root.field("histograms")?)? {
        snap.histograms.insert(
            name.clone(),
            HistogramStats {
                count: num(v.field("count")?)? as u64,
                sum: num(v.field("sum")?)?,
                min: num(v.field("min")?)?,
                max: num(v.field("max")?)?,
            },
        );
    }
    println!("{path} (schema v{TRACE_SCHEMA_VERSION}):");
    print!("{}", snap.render_table());
    Ok(())
}

/// Runs the planning-as-a-service daemon until `POST /shutdown`.
///
/// Thin frontend over [`powerlens_serve::Server`]: maps the CLI options
/// onto a [`ServeConfig`], prints the bound address (`--port 0` picks an
/// ephemeral port, so scripts parse this line), and reports the final
/// tallies after a graceful shutdown.
fn serve_cmd(opts: &Options) -> CliResult {
    let cache = CacheMode::parse(&opts.cache)
        .ok_or_else(|| format!("unknown cache mode {:?}", opts.cache))?;
    let cfg = ServeConfig {
        addr: opts.addr.clone(),
        port: opts.port,
        workers: opts.threads,
        queue_depth: opts.queue_depth,
        shards: opts.shards,
        cache,
        cache_dir: (cache == CacheMode::Disk).then(|| PathBuf::from(&opts.cache_dir)),
        platform: opts.platform.clone(),
        batch: opts.batch,
        images: opts.images,
        models: trained_models_for(opts)?,
        ..ServeConfig::default()
    };
    let queue_depth = cfg.queue_depth;
    let server = Server::bind(cfg)?;
    println!("listening on {}", server.local_addr());
    println!(
        "endpoints: POST /plan /compare /lint /shutdown, GET /metrics /healthz \
         (queue depth {queue_depth}; POST /shutdown to stop)"
    );
    let report = server.run()?;
    println!(
        "served {} request(s), shed {}, degraded {}",
        report.requests, report.rejected, report.degraded
    );
    Ok(())
}

fn train(opts: &Options) -> CliResult {
    let platform = platform_for(opts);
    let config = PowerLensConfig::default();
    println!(
        "generating datasets on {} ({} random networks)...",
        platform.name(),
        opts.nets
    );
    let ds = dataset::generate(
        &platform,
        &config,
        &DatasetConfig {
            num_networks: opts.nets,
            ..DatasetConfig::default()
        },
    );
    println!(
        "dataset A: {} networks, dataset B: {} blocks; training...",
        ds.hyper.len(),
        ds.decision.len()
    );
    let models = train_models(
        &ds,
        config.schemes.len(),
        platform.gpu_levels(),
        &TrainingConfig::default(),
    );
    println!(
        "hyperparameter model: {:.1}% test accuracy",
        models.report.hyper_test_accuracy * 100.0
    );
    println!(
        "decision model:       {:.1}% test accuracy ({:.1}% within one level)",
        models.report.decision_test_accuracy * 100.0,
        models.report.decision_within_one_level * 100.0
    );
    models.save(Path::new(&opts.out))?;
    println!("saved to {}", opts.out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Command;

    fn opts() -> Options {
        Options {
            platform: "tx2".into(),
            batch: 4,
            images: 8,
            models: None,
            model: None,
            nets: 4,
            out: std::env::temp_dir()
                .join("powerlens_cli_test.json")
                .to_string_lossy()
                .into_owned(),
            format: "human".into(),
            baseline: None,
            trace: TraceMode::Off,
            cache: "off".into(),
            cache_dir: std::env::temp_dir()
                .join("powerlens_cli_test_cache")
                .to_string_lossy()
                .into_owned(),
            threads: 2,
            faults: None,
            fault_seed: None,
            addr: "127.0.0.1".into(),
            port: 0,
            queue_depth: 8,
            shards: 2,
            hybrid: false,
        }
    }

    #[test]
    fn zoo_and_inspect_succeed() {
        run(Command::Zoo).unwrap();
        run(Command::Inspect {
            model: "alexnet".into(),
        })
        .unwrap();
    }

    #[test]
    fn unknown_model_is_reported() {
        let err = run(Command::Inspect {
            model: "nope".into(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown model"));
    }

    #[test]
    fn sweep_plan_compare_run_on_small_model() {
        run(Command::Sweep {
            model: "alexnet".into(),
            opts: opts(),
        })
        .unwrap();
        run(Command::Plan {
            model: "alexnet".into(),
            opts: opts(),
        })
        .unwrap();
        run(Command::Compare {
            model: "alexnet".into(),
            opts: opts(),
        })
        .unwrap();
    }

    #[test]
    fn trace_writes_csv() {
        let mut o = opts();
        let path = std::env::temp_dir().join("powerlens_cli_trace.csv");
        o.out = path.to_string_lossy().into_owned();
        run(Command::Trace {
            model: "alexnet".into(),
            opts: o,
        })
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("t_start,"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn faultsim_runs_with_default_and_custom_specs() {
        run(Command::FaultSim {
            model: "alexnet".into(),
            opts: opts(),
        })
        .unwrap();
        let mut o = opts();
        o.faults = Some("switch_fail=0.5,retries=0".into());
        o.fault_seed = Some(7);
        run(Command::FaultSim {
            model: "alexnet".into(),
            opts: o,
        })
        .unwrap();
    }

    #[test]
    fn hybridsim_runs_with_default_and_custom_storms() {
        run(Command::HybridSim {
            model: "alexnet".into(),
            opts: opts(),
        })
        .unwrap();
        // A spec carrying its own phase change is honored as-is.
        let mut o = opts();
        o.faults = Some("switch_fail=0.3,retries=1,phase=0.2,phase_at=0.5".into());
        o.fault_seed = Some(11);
        run(Command::HybridSim {
            model: "alexnet".into(),
            opts: o,
        })
        .unwrap();
    }

    #[test]
    fn faultsim_and_compare_accept_the_hybrid_flag() {
        let mut o = opts();
        o.hybrid = true;
        run(Command::FaultSim {
            model: "alexnet".into(),
            opts: o.clone(),
        })
        .unwrap();
        run(Command::Compare {
            model: "alexnet".into(),
            opts: o,
        })
        .unwrap();
    }

    #[test]
    fn invalid_fault_spec_is_rejected_by_the_lint_gate() {
        let mut o = opts();
        o.faults = Some("switch_fail=1.5".into());
        let err = run(Command::FaultSim {
            model: "alexnet".into(),
            opts: o,
        })
        .unwrap_err();
        assert!(err.to_string().contains("invalid fault plan"));
        assert!(err.to_string().contains("PL401"));

        let mut o = opts();
        o.faults = Some("frobnicate=1".into());
        let err = run(Command::Compare {
            model: "alexnet".into(),
            opts: o,
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown fault spec key"));
    }

    #[test]
    fn compare_and_trace_accept_fault_flags() {
        let mut o = opts();
        o.faults = Some("switch_fail=0.2".into());
        run(Command::Compare {
            model: "alexnet".into(),
            opts: o,
        })
        .unwrap();
        let mut o = opts();
        o.faults = Some("drop=0.2,noise=0.1".into());
        let path = std::env::temp_dir().join("powerlens_cli_fault_trace.csv");
        o.out = path.to_string_lossy().into_owned();
        run(Command::Trace {
            model: "alexnet".into(),
            opts: o,
        })
        .unwrap();
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .starts_with("t_start,"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lint_passes_on_zoo_model_and_rejects_bad_format() {
        run(Command::Lint {
            model: Some("alexnet".into()),
            opts: opts(),
        })
        .unwrap();
        let mut o = opts();
        o.format = "sarif".into();
        run(Command::Lint {
            model: Some("alexnet".into()),
            opts: o,
        })
        .unwrap();
        let mut o = opts();
        o.format = "xml".into();
        let err = run(Command::Lint {
            model: Some("alexnet".into()),
            opts: o,
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown lint format"));
    }

    #[test]
    fn lint_baseline_grandfathers_old_findings_and_fails_on_new() {
        // googlenet's dead branch4.pool side chains guarantee findings on
        // any platform, so the ratchet has something to grandfather.
        let o = opts();
        let platform = ops::platform_by_name(&o.platform).unwrap();
        let g = zoo::by_name("googlenet").unwrap();
        let reports = vec![ops::lint_model(&platform, &g, o.batch).unwrap()];
        assert!(!reports[0].diagnostics.is_empty());

        let dir = std::env::temp_dir();
        let full = dir.join(format!(
            "powerlens_cli_baseline_full_{}.sarif",
            std::process::id()
        ));
        std::fs::write(
            &full,
            serde_json::to_string(&powerlens_lint::to_sarif(&reports)).unwrap(),
        )
        .unwrap();
        let empty = dir.join(format!(
            "powerlens_cli_baseline_empty_{}.sarif",
            std::process::id()
        ));
        std::fs::write(&empty, "{\"runs\": []}").unwrap();

        // A baseline covering every current finding: the ratchet passes.
        let mut o = opts();
        o.baseline = Some(full.to_string_lossy().into_owned());
        run(Command::Lint {
            model: Some("googlenet".into()),
            opts: o,
        })
        .unwrap();

        // An empty baseline: every finding is new, the typed error fires.
        let mut o = opts();
        o.baseline = Some(empty.to_string_lossy().into_owned());
        let err = run(Command::Lint {
            model: Some("googlenet".into()),
            opts: o,
        })
        .unwrap_err();
        let violation = err
            .downcast_ref::<BaselineViolation>()
            .expect("must be the typed ratchet error, not a plain string");
        assert!(violation.new_findings > 0);

        // A missing baseline file is an ordinary (exit 1) error.
        let mut o = opts();
        o.baseline = Some("/nonexistent/baseline.sarif".into());
        let err = run(Command::Lint {
            model: Some("googlenet".into()),
            opts: o,
        })
        .unwrap_err();
        assert!(err.downcast_ref::<BaselineViolation>().is_none());

        std::fs::remove_file(&full).ok();
        std::fs::remove_file(&empty).ok();
    }

    #[test]
    fn lint_disk_cache_serves_the_second_invocation() {
        let dir =
            std::env::temp_dir().join(format!("powerlens_cli_lint_cache_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut o = opts();
        o.cache = "disk".into();
        o.cache_dir = dir.to_string_lossy().into_owned();
        for _ in 0..2 {
            run(Command::Lint {
                model: Some("alexnet".into()),
                opts: o.clone(),
            })
            .unwrap();
        }
        // The disk tier now holds the entry the second run was served from.
        let entries: Vec<_> = std::fs::read_dir(dir.join("lint"))
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .collect();
        assert_eq!(entries.len(), 1, "one lint entry for one (graph, batch)");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_produces_loadable_models() {
        let o = opts();
        run(Command::Train { opts: o.clone() }).unwrap();
        let models = TrainedModels::load(Path::new(&o.out)).unwrap();
        assert!(models.report.num_hyper_samples >= 4);
        std::fs::remove_file(&o.out).ok();
    }

    #[test]
    fn plan_batch_runs_named_models_through_the_mem_cache() {
        let mut o = opts();
        o.cache = "mem".into();
        // A duplicate guarantees at least one cache hit inside the run.
        run(Command::PlanBatch {
            models: vec!["alexnet".into(), "mobilenet_v3".into(), "alexnet".into()],
            opts: o,
        })
        .unwrap();
    }

    #[test]
    fn plan_batch_reports_unknown_models() {
        let err = run(Command::PlanBatch {
            models: vec!["nope".into()],
            opts: opts(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown model"));
    }

    #[test]
    fn plan_with_disk_cache_populates_the_cache_dir() {
        let dir = std::env::temp_dir().join(format!("powerlens_cli_disk_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut o = opts();
        o.cache = "disk".into();
        o.cache_dir = dir.to_string_lossy().into_owned();
        // Twice: the second run must hit the entry the first one persisted.
        for _ in 0..2 {
            run(Command::Plan {
                model: "alexnet".into(),
                opts: o.clone(),
            })
            .unwrap();
        }
        let entries = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .count();
        assert_eq!(entries, 1, "one cached plan on disk");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_cache_mode_is_reported() {
        let mut o = opts();
        o.cache = "ram".into();
        let err = run(Command::Plan {
            model: "alexnet".into(),
            opts: o,
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown cache mode"));
    }

    #[test]
    fn missing_models_file_is_reported() {
        let mut o = opts();
        o.models = Some("/nonexistent/models.json".into());
        let err = run(Command::Plan {
            model: "alexnet".into(),
            opts: o,
        })
        .unwrap_err();
        assert!(err.to_string().contains("cannot load models"));
    }

    /// Exports a zoo model to a temp manifest and returns the path.
    fn exported_manifest(model: &str, tag: &str) -> std::path::PathBuf {
        let g = zoo::by_name(model).unwrap();
        let path = std::env::temp_dir().join(format!(
            "powerlens_cli_manifest_{tag}_{}.json",
            std::process::id()
        ));
        std::fs::write(&path, powerlens_ingest::export(&g)).unwrap();
        path
    }

    #[test]
    fn import_round_trips_an_exported_zoo_model() {
        let path = exported_manifest("alexnet", "import");
        run(Command::Import {
            path: path.to_string_lossy().into_owned(),
            opts: opts(),
        })
        .unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn import_rejects_a_malformed_manifest() {
        let path = std::env::temp_dir().join(format!(
            "powerlens_cli_manifest_bad_{}.json",
            std::process::id()
        ));
        std::fs::write(&path, "{\"schema_version\":1,").unwrap();
        let err = run(Command::Import {
            path: path.to_string_lossy().into_owned(),
            opts: opts(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("cannot import"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn plan_compare_and_lint_accept_a_manifest_via_the_model_flag() {
        let path = exported_manifest("alexnet", "flag");
        let mut o = opts();
        o.model = Some(path.to_string_lossy().into_owned());
        run(Command::Plan {
            model: String::new(),
            opts: o.clone(),
        })
        .unwrap();
        run(Command::Compare {
            model: String::new(),
            opts: o.clone(),
        })
        .unwrap();
        run(Command::Lint {
            model: None,
            opts: o,
        })
        .unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn plan_batch_appends_the_imported_manifest() {
        let path = exported_manifest("mobilenet_v3", "batch");
        let mut o = opts();
        o.model = Some(path.to_string_lossy().into_owned());
        // Mixes a zoo name with an imported manifest in one batch; any
        // failed plan (including the imported one) turns into an Err.
        run(Command::PlanBatch {
            models: vec!["alexnet".into()],
            opts: o,
        })
        .unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_manifest_path_is_reported() {
        let mut o = opts();
        o.model = Some("/nonexistent/model.json".into());
        let err = run(Command::Plan {
            model: String::new(),
            opts: o,
        })
        .unwrap_err();
        assert!(err.to_string().contains("cannot read manifest"));
    }
}
