#!/usr/bin/env sh
# Runs the criterion bench suites and writes a machine-readable summary:
# bench name -> median ns (plus baseline delta when a baseline file exists).
#
# Usage: scripts/bench.sh [-o OUTPUT] [-b BASELINE] [BENCH...]
#   -o OUTPUT    output JSON path            (default: BENCH_PR10.json)
#   -b BASELINE  prior summary to diff against (default: BENCH_PR9.json)
#   BENCH...     bench targets to run         (default: all [[bench]] targets)
#
# The JSON shape is {"<bench name>": {"median_ns": N[, "ratio_vs_ref": R]
# [, "baseline_ns": M, "speedup": S, "speedup_normalized": SN]}}.
#
# Raw medians from different machines (or the same machine under
# different load) are not comparable, so every run re-measures one
# pinned REFERENCE workload — lint_reference/cluster_and_decide_resnet152,
# the planning pipeline's clustering + per-block decision stage — and
# reports each bench as "ratio_vs_ref": median / reference-median, a
# dimensionless number stable across hosts. "speedup" stays the raw
# baseline_ns / median_ns; "speedup_normalized" divides out machine
# drift via the two reference measurements:
#   (baseline_ns / baseline_ref_ns) / (median_ns / ref_ns)
# Trust speedup_normalized when comparing summaries recorded on
# different days; a normalized value near 1.0 with a raw value far
# from it means the machine moved, not the code.
#
# When the bench_lint suite ran, a trailing
# "lint_overhead" entry reports each debug lint gate's cost (including the
# PL5xx dataflow pack) as a fraction of the pipeline stage it rides on
# (budget: <0.02), and a "lint_cache_speedup" entry reports warm cached
# re-lints vs a cold full lint run (floor: >= 10x). When the bench_store
# suite ran, a "store_speedup" entry reports warm-cache plan lookups vs
# cold planning (floor: >= 20x). When the bench_faults suite ran, a
# "faults_overhead" entry reports what carrying an inert fault plan costs
# relative to a clean engine run (budget: <= 1.05x), and an "ee_retention"
# entry records the faultsim robustness report (energy efficiency retained
# under the default fault sweep, per controller). When the bench_hybrid
# suite ran, a "hybrid_overhead" entry reports what threading the hybrid
# drift detector through a clean engine run costs over plain plan replay,
# in absolute nanoseconds per engine step (budget: <= 10 ns/step — see
# the awk block for why the budget is absolute), and an "ee_recovery"
# entry records the
# hybridsim online-adaptation report (faulted EE over the clean static
# plan's EE, per controller). When the bench_ingest suite ran, an
# "ingest_overhead" entry reports what importing a zoo-sized manifest
# costs as a fraction of cold-planning the same graph (budget: <= 0.02 —
# ingest sits on the serve request path, so it must stay invisible next
# to the planning work that follows it). A "serve_load" entry
# records the concurrent-load harness (smoke profile): plans/sec, p50/p99
# latency, and shed/degraded rates per traffic mix against a live
# powerlens-serve daemon. The perf trajectory across PRs compares these
# files.
set -eu

cd "$(dirname "$0")/.."

out="BENCH_PR10.json"
baseline="BENCH_PR9.json"
while getopts "o:b:" opt; do
    case "$opt" in
        o) out="$OPTARG" ;;
        b) baseline="$OPTARG" ;;
        *) echo "usage: scripts/bench.sh [-o OUTPUT] [-b BASELINE] [BENCH...]" >&2; exit 2 ;;
    esac
done
shift $((OPTIND - 1))

raw=$(mktemp)
ret=$(mktemp)
rec=$(mktemp)
srv=$(mktemp)
trap 'rm -f "$raw" "$ret" "$rec" "$srv"' EXIT

if [ "$#" -gt 0 ]; then
    for b in "$@"; do
        echo "==> cargo bench --bench $b"
        cargo bench --bench "$b" | tee -a "$raw"
    done
else
    echo "==> cargo bench (all suites)"
    cargo bench | tee "$raw"
fi

# Robustness sweep: the faultsim report prints greppable
# "ee_retention <controller> <value>" lines for the JSON summary.
echo "==> faultsim robustness sweep (alexnet, default fault spec)"
cargo build -q --release -p powerlens-cli
./target/release/powerlens-cli faultsim alexnet --batch 8 --images 16 \
    | tee /dev/stderr | grep '^ee_retention ' > "$ret" || true

# Online-adaptation sweep: the hybridsim report prints greppable
# "ee_recovery <controller> <value>" lines for the JSON summary.
echo "==> hybridsim online-adaptation sweep (alexnet, default storm)"
./target/release/powerlens-cli hybridsim alexnet --batch 8 --images 16 \
    | tee /dev/stderr | grep '^ee_recovery ' > "$rec" || true

# Concurrent-load harness: drives a live powerlens-serve daemon and prints
# greppable "serve_load <mix> plans_per_sec <v> ..." lines per traffic mix.
echo "==> serve_load concurrent-load harness (smoke profile)"
cargo build -q --release -p powerlens-bench --bin serve_load
./target/release/serve_load --profile smoke \
    | tee /dev/stderr | grep '^serve_load ' > "$srv" || true

# Criterion-shim lines look like:
#   name/case    time: [1.234 µs 1.456 µs 1.789 µs]  (20 samples x 7 iters)
# Field layout after splitting on '[' / ']': "v1 u1 v2 u2 v3 u3" — the
# median is the second value/unit pair.
awk -v out="$out" -v baseline="$baseline" -v retfile="$ret" -v recfile="$rec" -v servefile="$srv" '
function to_ns(v, u) {
    if (u == "s")  return v * 1e9
    if (u == "ms") return v * 1e6
    if (u == "ns") return v
    return v * 1e3   # µs (the µ survives as an opaque byte sequence)
}
/time: \[/ {
    name = $1
    split($0, parts, /[][]/)
    n = split(parts[2], f, /[ \t]+/)
    if (n >= 4) {
        ns[name] = to_ns(f[3], f[4])
        order[++count] = name
    }
}
END {
    # Load baseline medians (same JSON shape) if present.
    has_base = 0
    while ((getline line < baseline) > 0) {
        if (match(line, /"[^"]+": *\{ *"median_ns": *[0-9.]+/)) {
            entry = substr(line, RSTART, RLENGTH)
            match(entry, /"[^"]+"/)
            bname = substr(entry, RSTART + 1, RLENGTH - 2)
            match(entry, /[0-9.]+$/)
            base[bname] = substr(entry, RSTART, RLENGTH)
            has_base = 1
        }
    }
    # Pinned reference workload, re-measured every run: ratios against it
    # are comparable across machines; raw medians are not.
    refname = "lint_reference/cluster_and_decide_resnet152"
    ref = (refname in ns) ? ns[refname] : 0
    base_ref = (refname in base) ? base[refname] + 0 : 0
    if (ref > 0) {
        drift = (base_ref > 0) \
            ? sprintf(" (baseline %.1f ms, machine drift %.2fx)", \
                base_ref / 1e6, ref / base_ref) : ""
        printf "reference workload %s: %.1f ms this run%s\n", refname, \
            ref / 1e6, drift
    } else
        printf "warning: reference %s not in this run; ratios omitted\n", refname
    printf "{\n" > out
    for (i = 1; i <= count; i++) {
        name = order[i]
        printf "  \"%s\": {\"median_ns\": %.1f", name, ns[name] > out
        if (ref > 0)
            printf ", \"ratio_vs_ref\": %.6f", ns[name] / ref > out
        if (has_base && (name in base) && base[name] + 0 > 0) {
            printf ", \"baseline_ns\": %.1f, \"speedup\": %.2f", \
                base[name], base[name] / ns[name] > out
            if (ref > 0 && base_ref > 0)
                printf ", \"speedup_normalized\": %.2f", \
                    (base[name] / base_ref) / (ns[name] / ref) > out
        }
        printf "}%s\n", (i < count ? "," : "") > out
    }
    # Debug lint-gate overhead: each gate (sim::engine lints the graph,
    # core::pipeline lints the view + plan + dataflow fixpoint) as a
    # fraction of the planning pipeline stage (clustering + per-block
    # decisions). Budget: < 0.02.
    g_gate = "lint_gate/graph_pack_resnet152"
    v_gate = "lint_gate/view_plan_packs_resnet152"
    d_gate = "lint_gate/dataflow_pack_resnet152"
    pipe   = "lint_reference/cluster_and_decide_resnet152"
    if ((g_gate in ns) && (v_gate in ns) && (d_gate in ns) && (pipe in ns)) {
        printf ",\n  \"lint_overhead\": {\"engine_gate\": %.5f, \"pipeline_gate\": %.5f, \"dataflow_gate\": %.5f, \"total\": %.5f, \"budget\": 0.02}\n", \
            ns[g_gate] / ns[pipe], ns[v_gate] / ns[pipe], ns[d_gate] / ns[pipe], \
            (ns[g_gate] + ns[v_gate] + ns[d_gate]) / ns[pipe] > out
        printf "lint overhead vs pipeline: engine gate %.3f%%, pipeline gate %.3f%%, dataflow gate %.3f%%, total %.3f%% (budget 2%%)\n", \
            100 * ns[g_gate] / ns[pipe], 100 * ns[v_gate] / ns[pipe], \
            100 * ns[d_gate] / ns[pipe], \
            100 * (ns[g_gate] + ns[v_gate] + ns[d_gate]) / ns[pipe]
    }
    # Lint-cache payoff: a warm (memory-tier) report lookup vs a cold full
    # lint run of every pack. Floor: >= 10x.
    lcold = "lint_cache/cold_resnet152"
    lwarm = "lint_cache/warm_resnet152"
    if ((lcold in ns) && (lwarm in ns) && ns[lwarm] > 0) {
        printf ",\n  \"lint_cache_speedup\": {\"warm_vs_cold\": %.1f, \"floor\": 10}\n", \
            ns[lcold] / ns[lwarm] > out
        printf "lint cache: warm re-lint %.1fx faster than cold (floor 10x)\n", \
            ns[lcold] / ns[lwarm]
    }
    # Plan-store payoff: a warm (memory-tier) lookup vs a cold planning
    # run. Floor: >= 20x.
    cold = "store/plan_cold"
    warm = "store/plan_warm"
    if ((cold in ns) && (warm in ns) && ns[warm] > 0) {
        printf ",\n  \"store_speedup\": {\"warm_vs_cold\": %.1f, \"floor\": 20}\n", \
            ns[cold] / ns[warm] > out
        printf "plan store: warm lookup %.1fx faster than cold plan (floor 20x)\n", \
            ns[cold] / ns[warm]
    }
    # Fault-layer overhead: carrying an inert (zero-probability) fault plan
    # vs a clean engine run. Budget: <= 1.05x.
    fclean = "faults/engine_clean_alexnet"
    fzero  = "faults/engine_zero_plan_alexnet"
    ffault = "faults/engine_faulted_alexnet"
    if ((fclean in ns) && (fzero in ns) && ns[fclean] > 0) {
        printf ",\n  \"faults_overhead\": {\"zero_plan_vs_clean\": %.3f, \"budget\": 1.05", \
            ns[fzero] / ns[fclean] > out
        if (ffault in ns)
            printf ", \"storm_vs_clean\": %.3f", ns[ffault] / ns[fclean] > out
        printf "}\n" > out
        printf "fault layer: inert plan costs %+.1f%% vs clean (budget +5%%)\n", \
            100 * (ns[fzero] / ns[fclean] - 1)
    }
    # Hybrid-detector overhead: the clean engine run with the drift
    # detector threaded through it vs plain plan replay. With nothing
    # drifting the detector only reads telemetry windows, so the delta is
    # the pure cost of closing the loop. The budget is *absolute* — at
    # most 10 ns of detector per engine step: the simulated step is only
    # ~50 ns (an analytic model call), so a percentage there is dominated
    # by harness noise, while on hardware a layer step is >= milliseconds
    # and 10 ns meets the 2%-of-step deployment budget with five orders
    # of magnitude to spare. hsteps mirrors bench_hybrid.rs: 256 images /
    # batch 8 = 32 passes over the 19 alexnet layers.
    hplan = "hybrid/engine_plan_alexnet"
    hoff  = "hybrid/engine_detector_off_alexnet"
    hon   = "hybrid/engine_detector_on_alexnet"
    hsteps = (256 / 8) * 19
    if ((hplan in ns) && (hon in ns) && ns[hplan] > 0) {
        printf ",\n  \"hybrid_overhead\": {\"detector_ns_per_step\": %.2f, \"budget_ns_per_step\": 10", \
            (ns[hon] - ns[hplan]) / hsteps > out
        printf ", \"engine_step_ns\": %.2f, \"detector_on_vs_plan\": %.3f", \
            ns[hplan] / hsteps, ns[hon] / ns[hplan] > out
        if (hoff in ns)
            printf ", \"detector_off_vs_plan\": %.3f", ns[hoff] / ns[hplan] > out
        printf "}\n" > out
        printf "hybrid detector: %.1f ns/step on a %.1f ns simulated engine step (budget 10 ns)\n", \
            (ns[hon] - ns[hplan]) / hsteps, ns[hplan] / hsteps
    }
    # Manifest-import overhead: lowering a zoo-sized manifest (resnet152,
    # the deepest zoo graph) vs cold-planning the graph it produces.
    # Budget: <= 0.02.
    iimp  = "ingest/import_resnet152"
    iexp  = "ingest/export_resnet152"
    iplan = "ingest/plan_resnet152"
    if ((iimp in ns) && (iplan in ns) && ns[iplan] > 0) {
        printf ",\n  \"ingest_overhead\": {\"import_vs_plan\": %.5f, \"budget\": 0.02", \
            ns[iimp] / ns[iplan] > out
        if (iexp in ns)
            printf ", \"export_vs_plan\": %.5f", ns[iexp] / ns[iplan] > out
        printf "}\n" > out
        printf "ingest: importing resnet152 costs %.2f%% of planning it (budget 2%%)\n", \
            100 * ns[iimp] / ns[iplan]
    }
    # Energy-efficiency recovery under the default hybridsim storm, from
    # the online-adaptation report. Floors: hybrid >= powerlens (static
    # plan) and hybrid >= 0.9 x bim.
    nrec = 0
    while ((getline line < recfile) > 0) {
        n = split(line, cf, /[ \t]+/)
        if (n >= 3 && cf[1] == "ee_recovery") {
            cname[++nrec] = cf[2]
            cval[nrec] = cf[3]
        }
    }
    if (nrec > 0) {
        printf ",\n  \"ee_recovery\": {" > out
        for (j = 1; j <= nrec; j++)
            printf "%s\"%s\": %s", (j > 1 ? ", " : ""), cname[j], cval[j] > out
        printf ", \"floor\": \"hybrid >= powerlens and hybrid >= 0.9 * bim\"}\n" > out
        printf "ee recovery under the hybrid storm:"
        for (j = 1; j <= nrec; j++) printf " %s %s", cname[j], cval[j]
        printf "\n"
    }
    # Energy-efficiency retention under the default fault sweep, from the
    # faultsim robustness report. Floor: degraded >= 0.9 x bim.
    nret = 0
    while ((getline line < retfile) > 0) {
        n = split(line, rf, /[ \t]+/)
        if (n >= 3 && rf[1] == "ee_retention") {
            rname[++nret] = rf[2]
            rval[nret] = rf[3]
        }
    }
    if (nret > 0) {
        printf ",\n  \"ee_retention\": {" > out
        for (j = 1; j <= nret; j++)
            printf "%s\"%s\": %s", (j > 1 ? ", " : ""), rname[j], rval[j] > out
        printf ", \"floor\": \"degraded >= 0.9 * bim\"}\n" > out
        printf "ee retention under faults:"
        for (j = 1; j <= nret; j++) printf " %s %s", rname[j], rval[j]
        printf "\n"
    }
    # Concurrent serving throughput: plans/sec, latency percentiles, and
    # shed/degraded rates per traffic mix from the serve_load harness.
    nsrv = 0
    while ((getline line < servefile) > 0) {
        n = split(line, sf, /[ \t]+/)
        if (n >= 4 && sf[1] == "serve_load") {
            smix[++nsrv] = sf[2]
            entry = ""
            for (k = 3; k + 1 <= n; k += 2)
                entry = entry (entry == "" ? "" : ", ") \
                    "\"" sf[k] "\": " sf[k + 1]
            sobj[nsrv] = entry
        }
    }
    if (nsrv > 0) {
        printf ",\n  \"serve_load\": {" > out
        for (j = 1; j <= nsrv; j++)
            printf "%s\"%s\": {%s}", (j > 1 ? ", " : ""), smix[j], sobj[j] > out
        printf "}\n" > out
        printf "serve_load mixes recorded:"
        for (j = 1; j <= nsrv; j++) printf " %s", smix[j]
        printf "\n"
    }
    printf "}\n" > out
    printf "wrote %s (%d benches%s)\n", out, count, \
        has_base ? ", with baseline deltas" : ""
}' "$raw"
