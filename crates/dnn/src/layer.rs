use std::fmt;

use crate::{OpKind, TensorShape};

/// Index of a layer within a [`crate::Graph`] (position in execution order).
pub type LayerId = usize;

/// One operator instance inside a graph, with its resolved shapes and cached
/// analytical costs.
///
/// Layers are created through [`crate::GraphBuilder`]; the builder threads
/// shapes so that `output_shape` of layer *i* is `input_shape` of layer
/// *i + 1*.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Position in the graph's execution order.
    pub id: LayerId,
    /// Human-readable name (e.g. `"layer3.0.conv2"`).
    pub name: String,
    /// Operator kind and hyperparameters.
    pub op: OpKind,
    /// Activation shape consumed by this layer (batch dimension excluded).
    pub input_shape: TensorShape,
    /// Activation shape produced by this layer.
    pub output_shape: TensorShape,
    flops: f64,
    params: f64,
    memory_bytes: f64,
    sparsity: f64,
}

impl Layer {
    /// Creates a layer, resolving the output shape and caching costs.
    ///
    /// # Panics
    ///
    /// Panics if `op` cannot consume `input_shape` (see
    /// [`OpKind::output_shape`]).
    #[track_caller]
    pub fn new(id: LayerId, name: impl Into<String>, op: OpKind, input_shape: TensorShape) -> Self {
        Self::try_new(id, name, op, input_shape)
            .unwrap_or_else(|| panic!("operator {op:?} cannot consume shape {input_shape}"))
    }

    /// Non-panicking variant of [`Layer::new`]: `None` when `op` cannot
    /// consume `input_shape`. Costs are computed against the resolved output
    /// shape, so this path never hits the shape-inference panic — it is the
    /// constructor the `powerlens-ingest` importer uses for untrusted
    /// manifests.
    pub fn try_new(
        id: LayerId,
        name: impl Into<String>,
        op: OpKind,
        input_shape: TensorShape,
    ) -> Option<Self> {
        let output_shape = op.try_output_shape(input_shape)?;
        let params = op.params()
            + match op {
                OpKind::BatchNorm | OpKind::LayerNorm => 2.0 * input_shape.channels() as f64,
                _ => 0.0,
            };
        Some(Layer {
            id,
            name: name.into(),
            op,
            input_shape,
            output_shape,
            flops: op.flops_with(input_shape, output_shape),
            params,
            memory_bytes: op.memory_bytes_with(input_shape, output_shape),
            sparsity: 0.0,
        })
    }

    /// Sets the layer's activation/weight sparsity fraction, clamped to
    /// `[0, 1]` (non-finite values clamp to dense). Returns `self` for
    /// builder-style chaining.
    pub fn with_sparsity(mut self, sparsity: f64) -> Self {
        self.sparsity = if sparsity.is_finite() {
            sparsity.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self
    }

    /// Fraction of multiply-accumulates skippable as zero, in `[0, 1]`.
    /// `0.0` (the default) means dense; the power model scales effective
    /// compute by the surviving density `1 - sparsity`.
    pub fn sparsity(&self) -> f64 {
        self.sparsity
    }

    /// Floating-point operations for one sample.
    pub fn flops(&self) -> f64 {
        self.flops
    }

    /// Learnable parameter count (norm layers include their scale/shift).
    pub fn params(&self) -> f64 {
        self.params
    }

    /// Off-chip memory traffic in bytes for one sample.
    pub fn memory_bytes(&self) -> f64 {
        self.memory_bytes
    }

    /// Weight (parameter) traffic in bytes — loaded once per kernel launch,
    /// independent of batch size.
    pub fn weight_bytes(&self) -> f64 {
        self.params * crate::BYTES_PER_ELEM
    }

    /// Activation traffic in bytes for one sample (total minus weights).
    pub fn activation_bytes(&self) -> f64 {
        (self.memory_bytes - self.weight_bytes()).max(0.0)
    }

    /// Arithmetic intensity in FLOPs per byte — the key compute-vs-memory
    /// boundedness signal used by both the power model and the feature
    /// extractor.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.memory_bytes > 0.0 {
            self.flops / self.memory_bytes
        } else {
            0.0
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<3} {:<24} {:<11} {} -> {} ({:.2} MFLOPs)",
            self.id,
            self.name,
            self.op.name(),
            self.input_shape,
            self.output_shape,
            self.flops / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ActKind;

    #[test]
    fn layer_caches_costs() {
        let l = Layer::new(
            0,
            "conv1",
            OpKind::Conv2d {
                in_ch: 3,
                out_ch: 64,
                kernel: 7,
                stride: 2,
                padding: 3,
                groups: 1,
            },
            TensorShape::chw(3, 224, 224),
        );
        assert_eq!(l.output_shape, TensorShape::chw(64, 112, 112));
        assert!(l.flops() > 1e8);
        assert!(l.params() > 9000.0);
        assert!(l.arithmetic_intensity() > 1.0);
    }

    #[test]
    fn batchnorm_params_track_channels() {
        let l = Layer::new(0, "bn", OpKind::BatchNorm, TensorShape::chw(64, 56, 56));
        assert_eq!(l.params(), 128.0);
    }

    #[test]
    fn relu_is_memory_bound() {
        let l = Layer::new(
            0,
            "relu",
            OpKind::Activation(ActKind::Relu),
            TensorShape::chw(64, 56, 56),
        );
        assert!(l.arithmetic_intensity() < 1.0);
    }

    #[test]
    fn try_new_rejects_incompatible_shapes() {
        let op = OpKind::Conv2d {
            in_ch: 3,
            out_ch: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        };
        assert!(Layer::try_new(0, "conv", op, TensorShape::tokens(4, 4)).is_none());
        let l = Layer::try_new(0, "conv", op, TensorShape::chw(3, 8, 8)).unwrap();
        assert_eq!(l, Layer::new(0, "conv", op, TensorShape::chw(3, 8, 8)));
    }

    #[test]
    fn sparsity_defaults_dense_and_clamps() {
        let l = Layer::new(0, "bn", OpKind::BatchNorm, TensorShape::chw(8, 4, 4));
        assert_eq!(l.sparsity(), 0.0);
        assert_eq!(l.clone().with_sparsity(0.7).sparsity(), 0.7);
        assert_eq!(l.clone().with_sparsity(4.0).sparsity(), 1.0);
        assert_eq!(l.clone().with_sparsity(-2.0).sparsity(), 0.0);
        assert_eq!(l.clone().with_sparsity(f64::NAN).sparsity(), 0.0);
    }

    #[test]
    fn display_contains_name_and_op() {
        let l = Layer::new(3, "fc", OpKind::Flatten, TensorShape::chw(512, 1, 1));
        let s = l.to_string();
        assert!(s.contains("fc") && s.contains("flatten"));
    }
}
