//! Integration tests spanning the whole stack: DNN IR -> features ->
//! clustering -> planning -> simulation, without trained models.

use powerlens::{evaluate_plan, PlanController, PowerLens, PowerLensConfig};
use powerlens_dnn::zoo;
use powerlens_platform::Platform;
use powerlens_sim::{Engine, InstrumentationPlan, InstrumentationPoint, StaticController};

#[test]
fn oracle_plans_cover_every_zoo_model_on_both_platforms() {
    for platform in [Platform::agx(), Platform::tx2()] {
        let pl = PowerLens::untrained(&platform, PowerLensConfig::default());
        for (name, build) in zoo::all_models() {
            let g = build();
            let outcome = pl.plan_oracle(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(outcome.view.num_layers(), g.num_layers(), "{name}");
            assert_eq!(
                outcome.plan.num_blocks(),
                outcome.view.num_blocks(),
                "{name}"
            );
            assert!(
                outcome.plan.num_blocks() <= pl.config().max_blocks,
                "{name}: {} blocks exceed cap",
                outcome.plan.num_blocks()
            );
            for p in outcome.plan.points() {
                assert!(p.gpu_level < platform.gpu_levels(), "{name}");
                assert!(p.layer < g.num_layers(), "{name}");
            }
        }
    }
}

#[test]
fn powerlens_beats_max_frequency_on_every_model() {
    let platform = Platform::agx();
    let pl = PowerLens::untrained(&platform, PowerLensConfig::default());
    for (name, build) in zoo::all_models() {
        let g = build();
        let outcome = pl.plan_oracle(&g).unwrap();
        let ours = evaluate_plan(&platform, &g, &outcome.plan, 8, 48);
        let max_plan = InstrumentationPlan::new(
            vec![InstrumentationPoint {
                layer: 0,
                gpu_level: platform.gpu_table().max_level(),
            }],
            platform.cpu_table().max_level(),
        );
        let max = evaluate_plan(&platform, &g, &max_plan, 8, 48);
        assert!(
            ours.energy_efficiency > max.energy_efficiency * 1.05,
            "{name}: {:.3} vs max-freq {:.3}",
            ours.energy_efficiency,
            max.energy_efficiency
        );
    }
}

#[test]
fn analytic_evaluation_tracks_simulator_for_oracle_plans() {
    let platform = Platform::tx2();
    let pl = PowerLens::untrained(&platform, PowerLensConfig::default());
    for name in ["alexnet", "resnet34", "vit_base_32"] {
        let g = zoo::by_name(name).unwrap();
        let outcome = pl.plan_oracle(&g).unwrap();
        let analytic = evaluate_plan(&platform, &g, &outcome.plan, 8, 16);
        let engine = Engine::new(&platform).with_batch(8);
        let mut ctl = PlanController::new(outcome.plan);
        let sim = engine.run(&g, &mut ctl, 16);
        let rel_e = (analytic.energy - sim.total_energy).abs() / sim.total_energy;
        assert!(rel_e < 0.02, "{name}: energy mismatch {rel_e}");
        let rel_t = (analytic.time - sim.total_time).abs() / sim.total_time;
        assert!(rel_t < 0.02, "{name}: time mismatch {rel_t}");
    }
}

#[test]
fn agx_gains_exceed_tx2_gains() {
    // Paper shape: PowerLens' improvement over max-frequency operation is
    // larger on the AGX than on the TX2 (Table 1 averages).
    let mut gains = Vec::new();
    for platform in [Platform::agx(), Platform::tx2()] {
        let pl = PowerLens::untrained(&platform, PowerLensConfig::default());
        let g = zoo::resnet152();
        let outcome = pl.plan_oracle(&g).unwrap();
        let ours = evaluate_plan(&platform, &g, &outcome.plan, 8, 48);
        let max_plan = InstrumentationPlan::new(
            vec![InstrumentationPoint {
                layer: 0,
                gpu_level: platform.gpu_table().max_level(),
            }],
            platform.cpu_table().max_level(),
        );
        let max = evaluate_plan(&platform, &g, &max_plan, 8, 48);
        gains.push(ours.energy_efficiency / max.energy_efficiency);
    }
    assert!(gains[0] > gains[1], "AGX {} <= TX2 {}", gains[0], gains[1]);
}

#[test]
fn frequency_sweep_is_unimodal_enough_for_hill_climbing() {
    // The EE-vs-level curve should rise then fall (a single interior
    // optimum) — the property both FPG's hill climb and the oracle rely on.
    let platform = Platform::agx();
    let engine = Engine::new(&platform).with_batch(8);
    let g = zoo::resnet152();
    let ee: Vec<f64> = engine
        .sweep_gpu_levels(&g, 16)
        .into_iter()
        .map(|r| r.energy_efficiency)
        .collect();
    let best = ee
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert!(
        best > 0 && best < ee.len() - 1,
        "optimum at boundary: {best}"
    );
    for i in 1..=best {
        assert!(
            ee[i] > ee[i - 1] * 0.98,
            "non-increasing before optimum at {i}"
        );
    }
    for i in (best + 1)..ee.len() {
        assert!(
            ee[i] < ee[i - 1] * 1.02,
            "non-decreasing after optimum at {i}"
        );
    }
}

#[test]
fn static_controller_runs_all_models_without_panic() {
    let platform = Platform::tx2();
    let engine = Engine::new(&platform).with_batch(4);
    for (name, build) in zoo::all_models() {
        let g = build();
        let mut ctl = StaticController::new(5, 3);
        let r = engine.run(&g, &mut ctl, 8);
        assert!(r.total_time > 0.0, "{name}");
        assert!(r.total_energy.is_finite(), "{name}");
    }
}
