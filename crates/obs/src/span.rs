//! RAII timing spans with per-thread hierarchical paths.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Stack of active span paths on this thread; the top is the parent of
    /// the next span opened.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn reset_thread_stack() {
    SPAN_STACK.with(|s| s.borrow_mut().clear());
}

/// Guard returned by [`crate::span`]; records the elapsed wall time under
/// the span's hierarchical path when dropped.
///
/// The guard is tied to the thread that opened it (span hierarchies are
/// per-thread) and is intentionally `!Send`.
#[must_use = "a span measures the time until the guard is dropped"]
pub struct SpanGuard {
    /// `None` when tracing was disabled at creation: dropping is free.
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    path: String,
    start: Instant,
    /// Keeps the guard `!Send`: the path stack is thread-local.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanGuard {
    pub(crate) fn disabled() -> SpanGuard {
        SpanGuard { active: None }
    }

    pub(crate) fn enter(name: &str) -> SpanGuard {
        debug_assert!(
            !name.contains('/'),
            "span name {name:?} must not contain '/'; nest spans instead"
        );
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        crate::emit_span_enter(&path);
        SpanGuard {
            active: Some(ActiveSpan {
                path,
                start: Instant::now(),
                _not_send: std::marker::PhantomData,
            }),
        }
    }

    /// The full hierarchical path, or `None` for a disabled guard.
    pub fn path(&self) -> Option<&str> {
        self.active.as_ref().map(|a| a.path.as_str())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let nanos = active.start.elapsed().as_nanos();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards normally drop in LIFO order; tolerate out-of-order
            // drops by removing this span's entry wherever it sits.
            if let Some(pos) = stack.iter().rposition(|p| *p == active.path) {
                stack.remove(pos);
            }
        });
        crate::record_span_exit(&active.path, nanos);
    }
}

#[cfg(test)]
mod tests {
    use crate::{init, snapshot, span, test_lock, test_support, TraceMode};

    #[test]
    fn nested_spans_build_hierarchical_paths() {
        let _l = test_lock();
        test_support::reset_for_test();
        init(TraceMode::Json);
        {
            let outer = span("plan");
            assert_eq!(outer.path(), Some("plan"));
            {
                let inner = span("clustering");
                assert_eq!(inner.path(), Some("plan/clustering"));
            }
            {
                let inner = span("decision");
                assert_eq!(inner.path(), Some("plan/decision"));
            }
        }
        let snap = snapshot();
        assert_eq!(snap.spans["plan"].count, 1);
        assert_eq!(snap.spans["plan/clustering"].count, 1);
        assert_eq!(snap.spans["plan/decision"].count, 1);
        test_support::reset_for_test();
    }

    #[test]
    fn nested_span_timing_is_monotonic() {
        let _l = test_lock();
        test_support::reset_for_test();
        init(TraceMode::Json);
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let snap = snapshot();
        let outer = &snap.spans["outer"];
        let inner = &snap.spans["outer/inner"];
        assert!(inner.total_ns >= 2_000_000, "sleep must register");
        assert!(
            outer.total_ns >= inner.total_ns,
            "parent ({}) must cover child ({})",
            outer.total_ns,
            inner.total_ns
        );
        assert!(outer.min_ns <= outer.max_ns);
        test_support::reset_for_test();
    }

    #[test]
    fn sibling_threads_do_not_share_hierarchy() {
        let _l = test_lock();
        test_support::reset_for_test();
        init(TraceMode::Json);
        let _outer = span("main_thread");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let worker = span("worker");
                // Not "main_thread/worker": hierarchies are per-thread.
                assert_eq!(worker.path(), Some("worker"));
            });
        });
        drop(_outer);
        test_support::reset_for_test();
    }

    #[test]
    fn disabled_guard_has_no_path() {
        let _l = test_lock();
        test_support::reset_for_test();
        let g = span("ignored");
        assert_eq!(g.path(), None);
    }
}
