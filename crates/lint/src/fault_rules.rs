//! Faults pack: sanity rules over fault-injection plans.
//!
//! A `FaultPlan` is configuration, usually typed on a CLI — exactly the kind
//! of input that silently does the wrong thing: a probability of `1.5`, a
//! negative jitter, a retry budget that turns one flaky switch into an
//! unbounded stall, a "cap" that caps nothing because it sits above the
//! frequency table. The `faultsim` / `--faults` entry points gate on these
//! rules before a single fault is injected.

use powerlens_faults::{FaultPlan, MAX_RETRY_BUDGET};
use powerlens_platform::Platform;

use crate::diag::{LintReport, Location};
use crate::rules;
use crate::LintConfig;

/// Sigma above which the multiplicative-noise clamp (`[0.5, 1.5]`)
/// saturates often enough to distort the configured distribution (`PL404`).
pub const MAX_REASONABLE_SIGMA: f64 = 0.5;

/// Runs every fault rule over `plan`, appending findings to `report`. Pass
/// the target platform to also check the level cap against its frequency
/// table (`PL405`); without one, the cap check is skipped.
pub fn check(
    plan: &FaultPlan,
    platform: Option<&Platform>,
    config: &LintConfig,
    report: &mut LintReport,
) {
    let probabilities = [
        ("gpu switch-failure", plan.gpu_switch_fail_p),
        ("cpu switch-failure", plan.cpu_switch_fail_p),
        ("sensor dropout", plan.sensor_drop_p),
        ("power perturbation", plan.power_perturb_p),
    ];
    if config.enabled(rules::FAULT_PROBABILITY_RANGE.code) {
        for (what, p) in probabilities {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                report.push(
                    &rules::FAULT_PROBABILITY_RANGE,
                    Location::Model,
                    format!("{what} probability {p} is outside [0, 1]"),
                );
            }
        }
    }

    let magnitudes = [
        ("switch jitter", plan.switch_jitter_s),
        ("retry backoff", plan.retry_backoff_s),
        ("sensor noise sigma", plan.sensor_noise_sigma),
        ("power perturbation sigma", plan.power_perturb_sigma),
    ];
    if config.enabled(rules::FAULT_MAGNITUDE_INVALID.code) {
        for (what, m) in magnitudes {
            if !m.is_finite() || m < 0.0 {
                report.push(
                    &rules::FAULT_MAGNITUDE_INVALID,
                    Location::Model,
                    format!("{what} {m} must be finite and non-negative"),
                );
            }
        }
    }

    if plan.max_retries > MAX_RETRY_BUDGET && config.enabled(rules::FAULT_RETRY_UNBOUNDED.code) {
        report.push(
            &rules::FAULT_RETRY_UNBOUNDED,
            Location::Model,
            format!(
                "retry budget {} exceeds the ceiling of {MAX_RETRY_BUDGET}",
                plan.max_retries
            ),
        );
    }

    if config.enabled(rules::FAULT_SIGMA_EXCESSIVE.code) {
        for (what, sigma) in [
            ("sensor noise sigma", plan.sensor_noise_sigma),
            ("power perturbation sigma", plan.power_perturb_sigma),
        ] {
            if sigma.is_finite() && sigma > MAX_REASONABLE_SIGMA {
                report.push(
                    &rules::FAULT_SIGMA_EXCESSIVE,
                    Location::Model,
                    format!(
                        "{what} {sigma} saturates the [0.5, 1.5] clamp \
                         (keep it at or below {MAX_REASONABLE_SIGMA})"
                    ),
                );
            }
        }
    }

    if config.enabled(rules::FAULT_PHASE_INVALID.code) {
        // drift == -1 zeroes power for the rest of the run and anything
        // below it makes energy negative; both break every EE metric
        // downstream.
        if !plan.phase_power_drift.is_finite() || plan.phase_power_drift <= -1.0 {
            report.push(
                &rules::FAULT_PHASE_INVALID,
                Location::Model,
                format!(
                    "phase power drift {} must be finite and above -1 \
                     (power stays positive)",
                    plan.phase_power_drift
                ),
            );
        }
        if !plan.phase_at_s.is_finite() || plan.phase_at_s < 0.0 {
            report.push(
                &rules::FAULT_PHASE_INVALID,
                Location::Model,
                format!(
                    "phase start time {} s must be finite and non-negative",
                    plan.phase_at_s
                ),
            );
        }
    }

    if let (Some(cap), Some(p)) = (plan.gpu_level_cap, platform) {
        if cap >= p.gpu_levels() - 1 && config.enabled(rules::FAULT_CAP_ABOVE_TABLE.code) {
            report.push(
                &rules::FAULT_CAP_ABOVE_TABLE,
                Location::Model,
                format!(
                    "GPU level cap {cap} is at or above {}'s top level {}; it clamps nothing",
                    p.name(),
                    p.gpu_levels() - 1
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_fault_plan;

    fn lint(plan: &FaultPlan, platform: Option<&Platform>) -> LintReport {
        lint_fault_plan(plan, platform, &LintConfig::default())
    }

    #[test]
    fn inert_and_sensible_plans_are_clean() {
        assert!(lint(&FaultPlan::default(), None).diagnostics.is_empty());
        let plan = FaultPlan::parse("switch_fail=0.2,jitter=0.01,drop=0.1,noise=0.05").unwrap();
        let agx = Platform::agx();
        let r = lint(&plan, Some(&agx));
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn out_of_range_probability_is_an_error() {
        let plan = FaultPlan {
            gpu_switch_fail_p: 1.5,
            sensor_drop_p: -0.1,
            ..FaultPlan::default()
        };
        let r = lint(&plan, None);
        assert!(r.fired("PL401") && r.has_errors());
        assert_eq!(r.num_errors(), 2, "one finding per bad probability");
    }

    #[test]
    fn negative_or_nan_magnitudes_are_errors() {
        let plan = FaultPlan {
            switch_jitter_s: -0.01,
            power_perturb_sigma: f64::NAN,
            ..FaultPlan::default()
        };
        let r = lint(&plan, None);
        assert!(r.fired("PL402") && r.has_errors());
    }

    #[test]
    fn unbounded_retry_budget_is_an_error() {
        let mut plan = FaultPlan {
            max_retries: MAX_RETRY_BUDGET + 1,
            ..FaultPlan::default()
        };
        let r = lint(&plan, None);
        assert!(r.fired("PL403") && r.has_errors());
        plan.max_retries = MAX_RETRY_BUDGET;
        assert!(!lint(&plan, None).fired("PL403"), "ceiling itself is fine");
    }

    #[test]
    fn excessive_sigma_is_a_warning_not_an_error() {
        let plan = FaultPlan::parse("noise=0.8").unwrap();
        let r = lint(&plan, None);
        assert!(r.fired("PL404") && !r.has_errors());
    }

    #[test]
    fn degenerate_phase_changes_are_errors() {
        let sensible = FaultPlan::parse("phase=0.3,phase_at=1.5").unwrap();
        assert!(!lint(&sensible, None).fired("PL406"));
        // Power-killing drift and a negative start are two findings.
        let plan = FaultPlan {
            phase_power_drift: -1.0,
            phase_at_s: -0.5,
            ..FaultPlan::default()
        };
        let r = lint(&plan, None);
        assert!(r.fired("PL406") && r.has_errors());
        assert_eq!(r.num_errors(), 2);
        let nan = FaultPlan {
            phase_power_drift: f64::NAN,
            ..FaultPlan::default()
        };
        assert!(lint(&nan, None).fired("PL406"));
    }

    #[test]
    fn cap_above_table_warns_only_with_a_platform() {
        let plan = FaultPlan::parse("cap=13").unwrap();
        let agx = Platform::agx(); // 14 levels: top is 13.
        assert!(lint(&plan, Some(&agx)).fired("PL405"));
        assert!(!lint(&plan, None).fired("PL405"), "no platform, no check");
        let biting = FaultPlan::parse("cap=6").unwrap();
        assert!(!lint(&biting, Some(&agx)).fired("PL405"));
    }
}
