//! Mixed inference task flow (the paper's §3.2.2 scenario, scaled down):
//! a queue of tasks drawn from several models processed back-to-back, with
//! PowerLens switching instrumentation plans at task boundaries via
//! [`powerlens::MultiPlanController`], compared against the reactive
//! baselines on the same queue.
//!
//! ```text
//! cargo run --release -p powerlens --example taskflow
//! ```

use powerlens::{MultiPlanController, PowerLens, PowerLensConfig};
use powerlens_dnn::zoo;
use powerlens_governors::{Bim, FpgCg, FpgG};
use powerlens_platform::Platform;
use powerlens_sim::{run_taskflow, Controller, Engine, TaskSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NUM_TASKS: usize = 20;
const IMAGES_PER_TASK: usize = 50;

fn main() {
    let agx = Platform::agx();
    let names = ["alexnet", "resnet34", "resnet152", "vgg19", "vit_base_32"];
    let graphs: Vec<powerlens_dnn::Graph> = names
        .iter()
        .map(|n| zoo::by_name(n).expect("zoo"))
        .collect();

    // Offline: one plan per model (oracle-backed planner for brevity).
    let pl = PowerLens::untrained(&agx, PowerLensConfig::default());
    let mut powerlens = MultiPlanController::new();
    for g in &graphs {
        powerlens.insert(g.name(), pl.plan_oracle(g).expect("plan").plan);
    }

    // A random queue of tasks.
    let mut rng = StdRng::seed_from_u64(99);
    let tasks: Vec<TaskSpec<'_>> = (0..NUM_TASKS)
        .map(|_| TaskSpec {
            graph: &graphs[rng.gen_range(0..graphs.len())],
            images: IMAGES_PER_TASK,
        })
        .collect();
    println!(
        "task flow: {NUM_TASKS} tasks x {IMAGES_PER_TASK} images from {:?}",
        names
    );

    let engine = Engine::new(&agx).with_batch(8);
    let mut bim = Bim::new(&agx);
    let mut fpg_g = FpgG::new(&agx);
    let mut fpg_cg = FpgCg::new(&agx);
    let controllers: Vec<&mut dyn Controller> =
        vec![&mut powerlens, &mut fpg_g, &mut fpg_cg, &mut bim];

    println!();
    println!(
        "{:<12} {:>11} {:>9} {:>11} {:>9}",
        "method", "energy (J)", "time (s)", "EE (img/J)", "switches"
    );
    for ctl in controllers {
        let r = run_taskflow(&engine, &tasks, ctl);
        println!(
            "{:<12} {:>11.1} {:>9.1} {:>11.4} {:>9}",
            r.controller, r.total_energy, r.total_time, r.energy_efficiency, r.num_switches
        );
    }
}
