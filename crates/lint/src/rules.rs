//! The rule registry: stable codes, severities, invariants, paper references.
//!
//! Codes are permanent once shipped: `PL0xx` graph rules, `PL1xx` view rules,
//! `PL2xx` plan rules, `PL3xx` store rules, `PL4xx` fault-plan rules. New
//! rules append; retired rules leave a hole.

use crate::diag::Severity;

/// Which artifact a rule inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pack {
    /// Operator graphs (`powerlens_dnn::Graph`).
    Graph,
    /// Power views (`powerlens_cluster::PowerView`).
    View,
    /// DVFS plans (`powerlens_platform::InstrumentationPlan`).
    Plan,
    /// Cached plan-store entries (deserialized `PlanOutcome`s).
    Store,
    /// Fault-injection plans (`powerlens_faults::FaultPlan`).
    Faults,
}

impl Pack {
    /// Lower-case pack name for output.
    pub fn label(self) -> &'static str {
        match self {
            Pack::Graph => "graph",
            Pack::View => "view",
            Pack::Plan => "plan",
            Pack::Store => "store",
            Pack::Faults => "faults",
        }
    }
}

/// Static metadata of one lint rule.
#[derive(Debug)]
pub struct RuleInfo {
    /// Stable code, e.g. `"PL103"`.
    pub code: &'static str,
    /// Short kebab-case rule name, e.g. `"view-not-contiguous"`.
    pub name: &'static str,
    /// Severity of every finding this rule emits.
    pub severity: Severity,
    /// The pack the rule belongs to.
    pub pack: Pack,
    /// The invariant the rule enforces, in one sentence.
    pub invariant: &'static str,
    /// Where the paper states or implies the invariant.
    pub paper_ref: &'static str,
}

macro_rules! rules {
    ($($ident:ident = $code:literal, $name:literal, $sev:ident, $pack:ident,
        $invariant:literal, $paper:literal;)*) => {
        $(
            #[doc = concat!("`", $code, "` (", $name, ")")]
            pub static $ident: RuleInfo = RuleInfo {
                code: $code,
                name: $name,
                severity: Severity::$sev,
                pack: Pack::$pack,
                invariant: $invariant,
                paper_ref: $paper,
            };
        )*

        /// Every registered rule, ordered by code.
        pub fn all_rules() -> &'static [&'static RuleInfo] {
            static ALL: &[&RuleInfo] = &[$(&$ident,)*];
            ALL
        }
    };
}

rules! {
    // ---- graph pack -----------------------------------------------------
    GRAPH_EMPTY = "PL001", "graph-empty", Error, Graph,
        "a graph must contain at least one layer",
        "§2.1.1 (models are non-empty operator sequences)";
    LAYER_ID_ORDER = "PL002", "layer-id-order", Error, Graph,
        "layer ids must equal their execution-order index",
        "§2.1.3 (spacing term |i-j| assumes positional ids)";
    OP_SHAPE_INCOMPATIBLE = "PL003", "op-shape-incompatible", Error, Graph,
        "every operator must be able to consume its input shape \
         (category and channel/feature arity)",
        "§2.1.2 (depthwise features require resolvable shapes)";
    SHAPE_CACHE_MISMATCH = "PL004", "shape-cache-mismatch", Error, Graph,
        "a layer's stored output shape must equal the shape its operator \
         infers from the input shape",
        "§2.1.2 (shape-derived features feed the predictors)";
    SHAPE_CHAIN_BROKEN = "PL005", "shape-chain-broken", Error, Graph,
        "each layer's input shape must be the graph input or an earlier \
         layer's output (flattened token embeddings allowed)",
        "§2.1.1 (execution order is the layer order)";
    SKIP_EDGE_INVALID = "PL006", "skip-edge-invalid", Error, Graph,
        "skip edges must point forward to an existing layer (no dangling \
         or cyclic edges)",
        "§2.1.2 (residual counts come from well-formed edges)";
    OP_DEGENERATE_PARAMS = "PL007", "op-degenerate-params", Error, Graph,
        "operator hyperparameters must be non-degenerate (no zero strides, \
         kernels, channels, heads, or indivisible groupings)",
        "§2.1.2 (analytical cost model divides by these)";
    ZERO_ELEMENT_ACTIVATION = "PL008", "zero-element-activation", Warning, Graph,
        "no activation tensor should have zero elements",
        "§2.1.2 (zero-size tensors break per-layer cost accounting)";
    COST_CACHE_STALE = "PL009", "cost-cache-stale", Warning, Graph,
        "cached layer costs (FLOPs, params, memory) must match a recompute \
         from the operator and input shape, and be finite",
        "§2.1.2 (depthwise features are read from these caches)";
    SKIP_TARGET_NOT_MERGE = "PL010", "skip-target-not-merge", Warning, Graph,
        "skip edges should terminate at a merge operator (add or concat)",
        "§2.1.2 (macro features count residual/branch constructs)";
    ZERO_FLOP_LAYER = "PL011", "zero-flop-layer", Info, Graph,
        "layers with zero FLOPs (reshapes, concats) contribute no compute \
         signal to clustering",
        "§2.1.3 (power behaviour is compute/memory driven)";

    // ---- view pack ------------------------------------------------------
    VIEW_EMPTY = "PL101", "view-empty", Error, View,
        "a power view must contain at least one block",
        "Algorithm 1 (processClusters returns a partition)";
    BLOCK_EMPTY = "PL102", "block-empty", Error, View,
        "every power block must span at least one layer",
        "Algorithm 1 (blocks are non-empty layer ranges)";
    VIEW_NOT_CONTIGUOUS = "PL103", "view-not-contiguous", Error, View,
        "blocks must tile the layer range contiguously, starting at layer 0, \
         without gaps or overlaps",
        "§2.1.3 (blocks are contiguous and non-overlapping)";
    VIEW_COVERAGE = "PL104", "view-coverage", Error, View,
        "the view must cover exactly the source graph's layers",
        "§2.1.3 (the power view spans the whole network)";
    VIEW_COUNT_MISMATCH = "PL105", "view-count-mismatch", Error, View,
        "the view's recorded layer count must equal the sum of its block \
         lengths",
        "§2.1.3 (internal consistency of the intermediate representation)";
    BLOCK_TOO_SHORT = "PL106", "block-too-short", Warning, View,
        "blocks shorter than the configured minimum amortize DVFS switching \
         poorly",
        "§3.3 (50 ms transition cost motivates long blocks)";
    VIEW_MANY_BLOCKS = "PL107", "view-many-blocks", Info, View,
        "views with more blocks than the configured maximum incur frequent \
         transitions",
        "Table 1 (real models cluster into a handful of blocks)";
    DISTANCE_CACHE_SHAPE = "PL108", "distance-cache-shape", Error, View,
        "a distance cache's matrix must be square over its recorded layer \
         count, its feature dimension must match the depthwise extractor, \
         and (when the source graph is known) its layer count must match \
         the graph",
        "§2.1.2-2.1.3 (the distance matrix is pairwise over per-layer \
         depthwise feature rows)";

    // ---- plan pack ------------------------------------------------------
    PLAN_EMPTY = "PL201", "plan-empty", Error, Plan,
        "a plan must contain at least one instrumentation point",
        "§2.1.4 (every block gets a preset point)";
    PLAN_NOT_ASCENDING = "PL202", "plan-not-ascending", Error, Plan,
        "instrumentation points must be strictly ascending by layer id",
        "§2.1.4 (points are preset before each block, in block order)";
    PLAN_GPU_LEVEL_INVALID = "PL203", "plan-gpu-level-invalid", Error, Plan,
        "every requested GPU level must exist in the target platform's \
         frequency table",
        "§3.1 (AGX exposes 14 GPU levels, TX2 exposes 13)";
    PLAN_CPU_LEVEL_INVALID = "PL204", "plan-cpu-level-invalid", Error, Plan,
        "the fixed CPU level must exist in the target platform's frequency \
         table",
        "§3.2.1 (the CPU stays on a valid default level)";
    PLAN_POINT_BEYOND_GRAPH = "PL205", "plan-point-beyond-graph", Error, Plan,
        "instrumentation points must reference layers inside the graph",
        "§2.1.4 (points are preset before existing layers)";
    PLAN_VIEW_MISALIGNED = "PL206", "plan-view-misaligned", Error, Plan,
        "each instrumentation point must precede its power block: one point \
         per block, at the block's first layer",
        "§2.1.4 (points are preset *before* each power block)";
    PLAN_NOOP_TRANSITION = "PL207", "plan-noop-transition", Warning, Plan,
        "consecutive points with identical GPU levels schedule a transition \
         that changes nothing yet still costs the DVFS latency check",
        "§3.3 (transitions cost 50 ms; avoid gratuitous ones)";
    PLAN_UNCONTROLLED_PREFIX = "PL208", "plan-uncontrolled-prefix", Warning, Plan,
        "the first instrumentation point should be at layer 0, otherwise the \
         leading layers run at an inherited, unplanned frequency",
        "§2.1.4 (the plan governs the whole inference pass)";
    PLAN_ORACLE_DIVERGENCE = "PL209", "plan-oracle-divergence", Info, Plan,
        "per-block levels should stay close to the exhaustive-search oracle's \
         choice for the same block",
        "§3.2.2 (PowerLens tracks the oracle within a few levels)";

    // ---- store pack -----------------------------------------------------
    STORE_PLATFORM_DRIFT = "PL301", "store-platform-drift", Error, Store,
        "a cached plan may only be deployed on a platform whose signature \
         (name and frequency-table sizes) matches the one it was planned for",
        "§3.1 (frequency levels are only meaningful per platform table)";
    STORE_SCHEMA_OUTDATED = "PL302", "store-schema-outdated", Error, Store,
        "a cached entry's schema version must match the version this build \
         writes; older or newer entries must be re-planned, not trusted",
        "§2.1.4 (plans are an interface contract, not an opaque blob)";

    // ---- faults pack ----------------------------------------------------
    FAULT_PROBABILITY_RANGE = "PL401", "fault-probability-out-of-range", Error, Faults,
        "every fault probability (switch failure, sensor dropout, power \
         perturbation) must be a finite value in [0, 1]",
        "§3.3 (fault rates parameterize the robustness sweep)";
    FAULT_MAGNITUDE_INVALID = "PL402", "fault-magnitude-invalid", Error, Faults,
        "fault magnitudes (switch jitter, retry backoff, noise and \
         perturbation sigmas) must be finite and non-negative",
        "§3.3 (transition overheads are measured, non-negative durations)";
    FAULT_RETRY_UNBOUNDED = "PL403", "fault-retry-unbounded", Error, Faults,
        "the per-switch retry budget must not exceed the hard ceiling; an \
         unbounded retry loop turns one flaky switch into an unbounded stall",
        "§3.3 (the 50 ms switch cost bounds tolerable retry stalls)";
    FAULT_SIGMA_EXCESSIVE = "PL404", "fault-sigma-excessive", Warning, Faults,
        "noise and perturbation sigmas above 0.5 saturate the [0.5, 1.5] \
         clamp and stop behaving like the configured distribution",
        "§2.2 (measurement noise is a small relative perturbation)";
    FAULT_CAP_ABOVE_TABLE = "PL405", "fault-cap-above-table", Warning, Faults,
        "a GPU level cap at or above the platform's table top clamps \
         nothing; the fault plan does not do what it appears to",
        "§3.1 (AGX exposes 14 GPU levels, TX2 exposes 13)";
}

/// Looks up a rule by its stable code.
pub fn rule_by_code(code: &str) -> Option<&'static RuleInfo> {
    all_rules().iter().copied().find(|r| r.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_sorted_by_pack() {
        let rules = all_rules();
        assert!(rules.len() >= 12, "need at least 12 rules");
        for w in rules.windows(2) {
            assert!(w[0].code < w[1].code, "{} !< {}", w[0].code, w[1].code);
        }
        for r in rules {
            let prefix = match r.pack {
                Pack::Graph => "PL0",
                Pack::View => "PL1",
                Pack::Plan => "PL2",
                Pack::Store => "PL3",
                Pack::Faults => "PL4",
            };
            assert!(r.code.starts_with(prefix), "{} in wrong band", r.code);
            assert!(!r.invariant.is_empty() && !r.paper_ref.is_empty());
        }
    }

    #[test]
    fn every_pack_has_error_rules() {
        for pack in [
            Pack::Graph,
            Pack::View,
            Pack::Plan,
            Pack::Store,
            Pack::Faults,
        ] {
            assert!(all_rules()
                .iter()
                .any(|r| r.pack == pack && r.severity == Severity::Error));
        }
    }

    #[test]
    fn lookup_by_code() {
        assert_eq!(rule_by_code("PL103").unwrap().name, "view-not-contiguous");
        assert!(rule_by_code("PL999").is_none());
    }
}
