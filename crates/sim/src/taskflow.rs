use powerlens_dnn::Graph;

use crate::{Controller, Engine};

/// One task of an inference task flow (paper §3.2.2: 100 tasks randomly
/// assembled from the 12 models, 50 images each).
#[derive(Debug, Clone, Copy)]
pub struct TaskSpec<'a> {
    /// The model to run.
    pub graph: &'a Graph,
    /// Number of images in the task.
    pub images: usize,
}

/// Aggregate result of a task-flow run (Figure 5's three panels: energy,
/// time, energy efficiency).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskFlowReport {
    /// Controller that steered the flow.
    pub controller: String,
    /// Number of tasks processed.
    pub num_tasks: usize,
    /// Total images processed.
    pub total_images: usize,
    /// Total wall-clock time in seconds.
    pub total_time: f64,
    /// Total energy in joules.
    pub total_energy: f64,
    /// Time-weighted average power in watts.
    pub avg_power: f64,
    /// Energy efficiency in images per joule.
    pub energy_efficiency: f64,
    /// Total actual DVFS level changes (GPU + CPU).
    pub num_switches: usize,
    /// DVFS requests whose every attempt failed (level unchanged).
    pub num_failed_switches: usize,
    /// Total faults injected over the flow (0 for clean runs).
    pub faults_injected: usize,
}

/// Runs a sequence of tasks back-to-back under one controller. Board state
/// (current frequency levels, telemetry clock) persists across task
/// boundaries, exactly like a real device processing a queue.
pub fn run_taskflow(
    engine: &Engine<'_>,
    tasks: &[TaskSpec<'_>],
    controller: &mut dyn Controller,
) -> TaskFlowReport {
    let mut state = engine.fresh_state();
    let mut total_images = 0;
    for task in tasks {
        controller.on_task_start(task.graph);
        engine.run_into(&mut state, task.graph, controller, task.images);
        total_images += task.images;
    }
    let total_time = state.telemetry.now();
    // Physical energy; equals the telemetry fold bit-for-bit on clean runs.
    let total_energy = state.true_energy;
    TaskFlowReport {
        controller: controller.name().to_string(),
        num_tasks: tasks.len(),
        total_images,
        total_time,
        total_energy,
        avg_power: if total_time > 0.0 {
            total_energy / total_time
        } else {
            0.0
        },
        energy_efficiency: if total_energy > 0.0 {
            total_images as f64 / total_energy
        } else {
            0.0
        },
        num_switches: state.gpu.num_switches() + state.cpu.num_switches(),
        num_failed_switches: state.gpu.num_failed() + state.cpu.num_failed(),
        faults_injected: state.faults.as_ref().map_or(0, |f| f.injected_total()),
    }
}

/// Convenience accessors for printing task-flow totals next to single-run
/// reports.
impl TaskFlowReport {
    /// Frames per second over the whole flow.
    pub fn fps(&self) -> f64 {
        if self.total_time > 0.0 {
            self.total_images as f64 / self.total_time
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticController;
    use powerlens_dnn::zoo;
    use powerlens_platform::Platform;

    #[test]
    fn taskflow_totals_are_consistent() {
        let p = Platform::tx2();
        let e = Engine::new(&p).with_batch(10);
        let a = zoo::alexnet();
        let v = zoo::vgg19();
        let tasks = [
            TaskSpec {
                graph: &a,
                images: 20,
            },
            TaskSpec {
                graph: &v,
                images: 10,
            },
        ];
        let mut ctl = StaticController::new(6, p.cpu_table().max_level());
        let r = run_taskflow(&e, &tasks, &mut ctl);
        assert_eq!(r.num_tasks, 2);
        assert_eq!(r.total_images, 30);
        assert!(r.total_time > 0.0);
        assert!((r.energy_efficiency - 30.0 / r.total_energy).abs() < 1e-12);
        assert!((r.avg_power - r.total_energy / r.total_time).abs() < 1e-9);
    }

    #[test]
    fn taskflow_matches_sum_of_single_runs_for_static_control() {
        let p = Platform::agx();
        let e = Engine::new(&p).with_batch(5);
        let a = zoo::alexnet();
        let tasks = [
            TaskSpec {
                graph: &a,
                images: 10,
            },
            TaskSpec {
                graph: &a,
                images: 10,
            },
        ];
        let mut ctl = StaticController::new(4, 4);
        let flow = run_taskflow(&e, &tasks, &mut ctl);
        let mut ctl2 = StaticController::new(4, 4);
        let single = e.run(&a, &mut ctl2, 10);
        // Second task pays no extra DVFS switch, so flow time is slightly
        // less than 2x the single run (which pays the boot switch).
        assert!(flow.total_time < 2.0 * single.total_time + 1e-9);
        assert!(flow.total_time > 2.0 * (single.total_time - 0.11));
    }

    #[test]
    fn empty_taskflow_is_zero() {
        let p = Platform::agx();
        let e = Engine::new(&p);
        let mut ctl = StaticController::new(0, 0);
        let r = run_taskflow(&e, &[], &mut ctl);
        assert_eq!(r.total_images, 0);
        assert_eq!(r.energy_efficiency, 0.0);
    }
}
