//! JSON request and response types for the serving endpoints.
//!
//! Requests implement [`Deserialize`] by hand so that every field is
//! optional — the derived impl in the vendored serde shim treats absent
//! fields as errors, which is the right default for on-disk cache entries
//! but too strict for a network API where `{"model": "alexnet"}` should
//! just work. Responses use the derived [`Serialize`].

use serde::{DeError, Deserialize, Serialize, Value};

/// Reads an optional field: absent and `null` both mean `None`; a present
/// field of the wrong type is still an error.
fn opt<T: Deserialize>(v: &Value, name: &str) -> Result<Option<T>, DeError> {
    match v.field(name) {
        Ok(f) => {
            Option::<T>::from_value(f).map_err(|e| DeError::new(format!("field `{name}`: {e}")))
        }
        Err(_) => Ok(None),
    }
}

/// `POST /plan` — plan one model (`model`), a batch (`models`), or an
/// inline external manifest (`manifest`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanRequest {
    /// Zoo model name; mutually exclusive with `models` and `manifest`.
    pub model: Option<String>,
    /// Batch of zoo model names, planned concurrently on the worker pool.
    pub models: Option<Vec<String>>,
    /// Inline `powerlens-ingest` manifest object, imported through the
    /// PL7xx lint gate; mutually exclusive with `model` and `models`. The
    /// plan cache keys on the imported graph's content fingerprint, so two
    /// tenants posting the same manifest still get tenant-isolated entries.
    pub manifest: Option<Value>,
    /// Platform name (`agx`, `tx2`, `cloud`); daemon default when absent.
    pub platform: Option<String>,
    /// Inference batch size; daemon default when absent.
    pub batch: Option<usize>,
    /// Tenant namespace for cache isolation; shared namespace when absent.
    pub tenant: Option<String>,
}

impl Deserialize for PlanRequest {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(PlanRequest {
            model: opt(v, "model")?,
            models: opt(v, "models")?,
            manifest: opt(v, "manifest")?,
            platform: opt(v, "platform")?,
            batch: opt(v, "batch")?,
            tenant: opt(v, "tenant")?,
        })
    }
}

/// `POST /compare` — plan a model, then race the plan against the
/// baseline governors over a task flow.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompareRequest {
    /// Zoo model name (required).
    pub model: Option<String>,
    /// Platform name; daemon default when absent.
    pub platform: Option<String>,
    /// Inference batch size; daemon default when absent.
    pub batch: Option<usize>,
    /// Images per task; daemon default when absent.
    pub images: Option<usize>,
    /// Tasks in the flow; daemon default when absent.
    pub tasks: Option<usize>,
    /// Tenant namespace for the planning cache.
    pub tenant: Option<String>,
    /// Include the hybrid governor row (`true`); baselines only when
    /// absent/false.
    pub hybrid: Option<bool>,
}

impl Deserialize for CompareRequest {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(CompareRequest {
            model: opt(v, "model")?,
            platform: opt(v, "platform")?,
            batch: opt(v, "batch")?,
            images: opt(v, "images")?,
            tasks: opt(v, "tasks")?,
            tenant: opt(v, "tenant")?,
            hybrid: opt(v, "hybrid")?,
        })
    }
}

/// `POST /lint` — lint one model's graph, power view, and plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintRequest {
    /// Zoo model name (required).
    pub model: Option<String>,
    /// Platform name; daemon default when absent.
    pub platform: Option<String>,
    /// Inference batch size; daemon default when absent.
    pub batch: Option<usize>,
}

impl Deserialize for LintRequest {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(LintRequest {
            model: opt(v, "model")?,
            platform: opt(v, "platform")?,
            batch: opt(v, "batch")?,
        })
    }
}

/// One power block of a served plan.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlanBlock {
    /// First layer (inclusive).
    pub start: usize,
    /// One past the last layer (exclusive).
    pub end: usize,
}

/// One instrumentation point of a served plan.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlanPoint {
    /// Layer index where the switch fires.
    pub layer: usize,
    /// Target GPU frequency level.
    pub gpu_level: usize,
    /// That level's frequency in MHz, for human consumption.
    pub freq_mhz: f64,
}

/// Response body for a single planned model.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlanResponse {
    /// Model that was planned.
    pub model: String,
    /// Platform the plan targets.
    pub platform: String,
    /// Batch size the plan assumes.
    pub batch: usize,
    /// Tenant namespace used (empty string = shared namespace).
    pub tenant: String,
    /// Whether the plan came out of the store rather than the planner.
    pub cached: bool,
    /// Whether the answer is from a lower rung of the degradation ladder.
    pub degraded: bool,
    /// Index of the hyperparameter scheme that won.
    pub scheme_index: usize,
    /// CPU frequency level the plan pins.
    pub cpu_level: usize,
    /// Clustered power blocks.
    pub blocks: Vec<PlanBlock>,
    /// Proactive DVFS switch points.
    pub points: Vec<PlanPoint>,
}

/// Response body for `POST /plan` with a `models` batch.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlanBatchResponse {
    /// One entry per requested model, in request order.
    pub plans: Vec<PlanResponse>,
}

/// One governor's row in a `/compare` response.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CompareRowBody {
    /// Controller name.
    pub method: String,
    /// Total energy (joules).
    pub energy_j: f64,
    /// Total simulated time (seconds).
    pub time_s: f64,
    /// Images per joule.
    pub energy_efficiency: f64,
    /// DVFS switches issued.
    pub switches: usize,
}

/// Response body for `POST /compare`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CompareResponse {
    /// Model compared.
    pub model: String,
    /// Platform simulated.
    pub platform: String,
    /// Whether the underlying plan came from a degraded rung.
    pub degraded: bool,
    /// One row per controller, PowerLens plan first.
    pub rows: Vec<CompareRowBody>,
}

/// Response body for `POST /lint`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LintResponse {
    /// Model linted.
    pub model: String,
    /// Error-severity diagnostics.
    pub errors: usize,
    /// Warning-severity diagnostics.
    pub warnings: usize,
    /// Full diagnostic report (the `powerlens-lint` JSON schema).
    pub report: Value,
}

/// Error body used for 4xx/5xx responses.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ErrorResponse {
    /// Human-readable description of what went wrong.
    pub error: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_request_fields_are_all_optional() {
        let r: PlanRequest = serde_json::from_str("{}").unwrap();
        assert_eq!(r, PlanRequest::default());
        let r: PlanRequest =
            serde_json::from_str(r#"{"model": "alexnet", "tenant": "acme"}"#).unwrap();
        assert_eq!(r.model.as_deref(), Some("alexnet"));
        assert_eq!(r.tenant.as_deref(), Some("acme"));
        assert_eq!(r.batch, None);
        assert_eq!(r.manifest, None);
    }

    #[test]
    fn plan_request_carries_an_inline_manifest() {
        let r: PlanRequest =
            serde_json::from_str(r#"{"manifest": {"schema_version": 1, "nodes": []}}"#).unwrap();
        let m = r.manifest.expect("manifest parsed");
        assert!(m.field("schema_version").is_ok());
    }

    #[test]
    fn present_but_mistyped_fields_are_rejected() {
        let r: Result<PlanRequest, _> = serde_json::from_str(r#"{"batch": "eight"}"#);
        let msg = format!("{}", r.unwrap_err());
        assert!(msg.contains("batch"), "error should name the field: {msg}");
        // Explicit null is treated as absent, not as a type error.
        let r: PlanRequest = serde_json::from_str(r#"{"model": null}"#).unwrap();
        assert_eq!(r.model, None);
    }

    #[test]
    fn responses_render_as_json_objects() {
        let resp = PlanResponse {
            model: "alexnet".into(),
            platform: "agx".into(),
            batch: 8,
            tenant: String::new(),
            cached: false,
            degraded: false,
            scheme_index: 2,
            cpu_level: 3,
            blocks: vec![PlanBlock { start: 0, end: 5 }],
            points: vec![PlanPoint {
                layer: 0,
                gpu_level: 7,
                freq_mhz: 900.0,
            }],
        };
        let text = serde_json::to_string(&resp).unwrap();
        assert!(text.contains("\"degraded\": false") || text.contains("\"degraded\":false"));
        let v: Value = serde_json::from_str(&text).unwrap();
        assert!(v.field("points").is_ok());
    }
}
