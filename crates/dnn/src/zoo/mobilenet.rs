use super::helpers::{conv_bn, conv_bn_act, imagenet, se_module};
use crate::{ActKind, Graph, GraphBuilder, OpKind, PoolKind};

/// One inverted-residual block configuration:
/// `(kernel, expanded, out, use_se, use_hardswish, stride)`.
type BneckCfg = (usize, usize, usize, bool, bool, usize);

/// Pushes one MobileNetV3 inverted-residual block.
fn bneck(b: &mut GraphBuilder, prefix: &str, cfg: BneckCfg) {
    let (kernel, exp, out, use_se, hs, stride) = cfg;
    let act = if hs {
        ActKind::HardSwish
    } else {
        ActKind::Relu
    };
    let input_shape = b.current_shape();
    let in_ch = input_shape.channels();
    let residual = stride == 1 && in_ch == out;

    if exp != in_ch {
        conv_bn_act(b, &format!("{prefix}.expand"), exp, 1, 1, 0, 1, act);
    }
    // Depthwise conv.
    conv_bn_act(
        b,
        &format!("{prefix}.dw"),
        exp,
        kernel,
        stride,
        kernel / 2,
        exp,
        act,
    );
    if use_se {
        se_module(b, prefix, exp / 4);
    }
    // Linear projection.
    let proj = conv_bn(b, &format!("{prefix}.project"), out, 1, 1, 0, 1);
    if residual {
        let add = b.push(format!("{prefix}.add"), OpKind::Add);
        b.add_skip(proj, add);
    }
}

/// MobileNetV3-Large (torchvision `mobilenet_v3_large`): 15 inverted-residual
/// blocks with squeeze-excitation and hard-swish, ~0.22 GFLOPs / ~5.5 M
/// params. The paper's representative "small network" (1 power block).
pub fn mobilenet_v3() -> Graph {
    let mut b = GraphBuilder::new("mobilenet_v3", imagenet());
    conv_bn_act(&mut b, "stem", 16, 3, 2, 1, 1, ActKind::HardSwish);

    let cfgs: &[BneckCfg] = &[
        (3, 16, 16, false, false, 1),
        (3, 64, 24, false, false, 2),
        (3, 72, 24, false, false, 1),
        (5, 72, 40, true, false, 2),
        (5, 120, 40, true, false, 1),
        (5, 120, 40, true, false, 1),
        (3, 240, 80, false, true, 2),
        (3, 200, 80, false, true, 1),
        (3, 184, 80, false, true, 1),
        (3, 184, 80, false, true, 1),
        (3, 480, 112, true, true, 1),
        (3, 672, 112, true, true, 1),
        (5, 672, 160, true, true, 2),
        (5, 960, 160, true, true, 1),
        (5, 960, 160, true, true, 1),
    ];
    for (i, &cfg) in cfgs.iter().enumerate() {
        bneck(&mut b, &format!("block{}", i + 1), cfg);
    }
    conv_bn_act(&mut b, "conv_last", 960, 1, 1, 0, 1, ActKind::HardSwish);
    b.push(
        "head.avgpool",
        OpKind::Pool {
            kind: PoolKind::GlobalAvg,
            kernel: 0,
            stride: 0,
        },
    );
    b.push("head.flatten", OpKind::Flatten);
    b.push(
        "head.fc1",
        OpKind::Linear {
            in_features: 960,
            out_features: 1280,
        },
    );
    b.push("head.hs", OpKind::Activation(ActKind::HardSwish));
    b.push(
        "head.fc2",
        OpKind::Linear {
            in_features: 1280,
            out_features: 1000,
        },
    );
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobilenet_uses_depthwise_convs() {
        let g = mobilenet_v3();
        let dw = g.layers().iter().filter(|l| l.op.type_code() == 1).count();
        assert!(dw >= 15, "expected >= 15 depthwise convs, found {dw}");
    }

    #[test]
    fn mobilenet_is_lightweight() {
        let s = mobilenet_v3().stats();
        assert!(s.total_flops < 1e9, "mobilenet should be < 1 GFLOP");
    }

    #[test]
    fn residual_blocks_present() {
        assert!(!mobilenet_v3().skip_edges().is_empty());
    }
}
