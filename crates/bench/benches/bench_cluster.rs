//! Criterion micro-benchmarks: power-behaviour similarity clustering
//! (Algorithm 1) — the dominant offline workflow cost (Table 3's 60 s row).

use criterion::{criterion_group, criterion_main, Criterion};
use powerlens_cluster::{
    cluster_graph, dbscan, power_distance_matrix, power_distance_matrix_reference, ClusterParams,
    DistanceCache,
};
use powerlens_dnn::zoo;
use powerlens_features::depthwise_features;
use std::hint::black_box;

fn bench_distance_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_distance_matrix");
    group.sample_size(20);
    for name in ["resnet34", "resnet152"] {
        let g = zoo::by_name(name).unwrap();
        let x = depthwise_features(&g);
        group.bench_function(name, |b| {
            b.iter(|| power_distance_matrix(black_box(&x), 0.7, 0.08).unwrap())
        });
        // The seed's per-pair Mahalanobis path, kept as the before-side of
        // the whitening comparison (identical output within 1e-9).
        group.bench_function(format_args!("reference_{name}"), |b| {
            b.iter(|| power_distance_matrix_reference(black_box(&x), 0.7, 0.08).unwrap())
        });
    }
    group.finish();
}

fn bench_dbscan(c: &mut Criterion) {
    let g = zoo::resnet152();
    let x = depthwise_features(&g);
    let d = power_distance_matrix(&x, 0.7, 0.08).unwrap();
    c.bench_function("dbscan_resnet152", |b| {
        b.iter(|| dbscan(black_box(&d), 0.15, 4))
    });
}

fn bench_full_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_graph");
    group.sample_size(10);
    for name in ["resnet152", "densenet201"] {
        let g = zoo::by_name(name).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| cluster_graph(black_box(&g), &ClusterParams::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_sweep_incremental(c: &mut Criterion) {
    // The sweep-incrementality bar: re-thresholding a 15-point ε×minPts
    // grid through one DistanceCache should cost less than 2x a single
    // from-scratch `cluster_graph` call, because the distance matrix (the
    // dominant cost) is paid once and DBSCAN is cheap.
    let g = zoo::resnet152();
    let shape = ClusterParams::default();
    let mut group = c.benchmark_group("cluster_sweep");
    group.sample_size(10);
    group.bench_function("from_scratch_single", |b| {
        b.iter(|| cluster_graph(black_box(&g), &shape).unwrap())
    });
    group.bench_function("cached_15_point_sweep", |b| {
        b.iter(|| {
            let cache = DistanceCache::build(black_box(&g), &shape).unwrap();
            let mut blocks = 0usize;
            for eps in [0.05, 0.10, 0.15, 0.25, 0.40] {
                for min_pts in [2usize, 4, 6] {
                    let params = ClusterParams {
                        epsilon: eps,
                        min_pts,
                        ..shape
                    };
                    blocks += cache.cluster(&params).num_blocks();
                }
            }
            blocks
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_distance_matrix,
    bench_dbscan,
    bench_full_algorithm1,
    bench_sweep_incremental
);
criterion_main!(benches);
