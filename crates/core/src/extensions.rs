//! Extensions beyond the paper's evaluated system, implementing its §5
//! future-work directions:
//!
//! * **CPU DVFS** (`plan_with_cpu`) — PowerLens only configures the GPU in
//!   the paper; this extension additionally presets the CPU cluster level,
//!   chosen by an exhaustive sweep of the plan's energy at every CPU level.
//! * **Batch-size co-optimization** (`co_optimize_batch`) — jointly picks
//!   the inference batch size and the DVFS plan (the direction of
//!   Nabavinejad et al., the paper's reference \[15\]).
//!
//! Both compose with any planner mode (oracle or trained models) and are
//! exercised by `cargo run -p powerlens-bench --bin extensions`.

use powerlens_dnn::Graph;
use powerlens_platform::FreqLevel;
use powerlens_sim::{InstrumentationPlan, InstrumentationPoint};

use crate::{evaluate_plan, PlanEval, PlanOutcome, PowerLens, PowerLensError};

/// Result of the CPU-DVFS extension: the GPU plan plus the chosen CPU level.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuPlanOutcome {
    /// The underlying GPU planning outcome.
    pub base: PlanOutcome,
    /// The plan re-targeted at the selected CPU level.
    pub plan: InstrumentationPlan,
    /// Selected CPU level.
    pub cpu_level: FreqLevel,
    /// Analytic evaluation at the selected operating point.
    pub eval: PlanEval,
}

/// Plans a network and then sweeps every CPU level, keeping the one with
/// the best plan energy efficiency ("PowerLens-C+G").
///
/// Lower CPU levels save host power but stretch kernel launches; the sweep
/// finds the board-specific balance instead of assuming the MAXN default.
///
/// # Errors
///
/// Propagates planning errors; uses the oracle planner when no models are
/// loaded.
pub fn plan_with_cpu(pl: &PowerLens<'_>, graph: &Graph) -> Result<CpuPlanOutcome, PowerLensError> {
    let base = match pl.plan(graph) {
        Ok(o) => o,
        Err(PowerLensError::Untrained) => pl.plan_oracle(graph)?,
        Err(e) => return Err(e),
    };
    let platform = pl.platform();
    let batch = pl.config().batch;
    let images = pl.config().label_images;

    let mut best: Option<(f64, FreqLevel, InstrumentationPlan, PlanEval)> = None;
    for cpu in 0..platform.cpu_levels() {
        let candidate = InstrumentationPlan::new(base.plan.points().to_vec(), cpu);
        let eval = evaluate_plan_cpu(pl, graph, &candidate, batch, images, cpu);
        if best
            .as_ref()
            .is_none_or(|(ee, ..)| eval.energy_efficiency > *ee)
        {
            best = Some((eval.energy_efficiency, cpu, candidate, eval));
        }
    }
    let (_, cpu_level, plan, eval) = best.expect("at least one CPU level");
    Ok(CpuPlanOutcome {
        base,
        plan,
        cpu_level,
        eval,
    })
}

/// Like [`evaluate_plan`] but at an explicit CPU level.
fn evaluate_plan_cpu(
    pl: &PowerLens<'_>,
    graph: &Graph,
    plan: &InstrumentationPlan,
    batch: usize,
    images: usize,
    cpu: FreqLevel,
) -> PlanEval {
    // The analytic evaluator pins the CPU at max; simulate instead for
    // other levels via the per-layer cost queries.
    let platform = pl.platform();
    if cpu == platform.cpu_table().max_level() {
        return evaluate_plan(platform, graph, plan, batch, images);
    }
    let n = graph.num_layers();
    let points = plan.points();
    let mut per_batch_time = 0.0;
    let mut per_batch_energy = 0.0;
    let mut levels_seq = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let end = points.get(i + 1).map_or(n, |q| q.layer);
        for layer in &graph.layers()[p.layer..end] {
            let t = platform.layer_timing(layer, batch, p.gpu_level, cpu);
            per_batch_time += t.total;
            per_batch_energy += platform.layer_power(&t, p.gpu_level, cpu) * t.total;
        }
        levels_seq.push(p.gpu_level);
    }
    let num_batches = images.div_ceil(batch);
    let mut time = per_batch_time * num_batches as f64;
    let mut energy = per_batch_energy * num_batches as f64;
    let mut current = platform.gpu_table().max_level();
    let mut switches = 0;
    for _ in 0..num_batches {
        for &l in &levels_seq {
            if l != current {
                current = l;
                switches += 1;
            }
        }
    }
    let stall = platform.dvfs_transition_cost();
    time += switches as f64 * stall;
    energy += switches as f64 * stall * platform.idle_power(current, cpu);
    PlanEval {
        time,
        energy,
        energy_efficiency: if energy > 0.0 {
            images as f64 / energy
        } else {
            0.0
        },
        num_switches: switches,
    }
}

/// Result of batch co-optimization: the chosen batch and its plan.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPlanOutcome {
    /// Selected batch size.
    pub batch: usize,
    /// The plan produced at that batch size.
    pub plan: InstrumentationPlan,
    /// Analytic evaluation (per `images` of the planner config).
    pub eval: PlanEval,
}

/// Jointly optimizes the inference batch size and the DVFS plan: for each
/// candidate batch, re-plans the network (block optima shift with batch —
/// launch overheads amortize, weight traffic per image shrinks) and keeps
/// the most energy-efficient combination.
///
/// # Errors
///
/// Propagates planning errors.
///
/// # Panics
///
/// Panics if `batches` is empty or contains zero.
pub fn co_optimize_batch(
    pl: &PowerLens<'_>,
    graph: &Graph,
    batches: &[usize],
) -> Result<BatchPlanOutcome, PowerLensError> {
    assert!(!batches.is_empty(), "need at least one candidate batch");
    assert!(
        batches.iter().all(|&b| b > 0),
        "batch sizes must be positive"
    );
    let mut best: Option<BatchPlanOutcome> = None;
    for &batch in batches {
        let mut config = pl.config().clone();
        config.batch = batch;
        let scoped = match pl.models() {
            Some(m) => PowerLens::with_models(pl.platform(), config, m.clone()),
            None => PowerLens::untrained(pl.platform(), config),
        };
        let outcome = match scoped.plan(graph) {
            Ok(o) => o,
            Err(PowerLensError::Untrained) => scoped.plan_oracle(graph)?,
            Err(e) => return Err(e),
        };
        let eval = evaluate_plan(
            pl.platform(),
            graph,
            &outcome.plan,
            batch,
            pl.config().label_images.max(batch),
        );
        if best
            .as_ref()
            .is_none_or(|b| eval.energy_efficiency > b.eval.energy_efficiency)
        {
            best = Some(BatchPlanOutcome {
                batch,
                plan: outcome.plan,
                eval,
            });
        }
    }
    Ok(best.expect("non-empty batches"))
}

/// Builds the trivial max-frequency plan — the comparison point the
/// extensions report against.
pub fn max_frequency_plan(pl: &PowerLens<'_>) -> InstrumentationPlan {
    InstrumentationPlan::new(
        vec![InstrumentationPoint {
            layer: 0,
            gpu_level: pl.platform().gpu_table().max_level(),
        }],
        pl.platform().cpu_table().max_level(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PowerLensConfig;
    use powerlens_dnn::zoo;
    use powerlens_platform::Platform;

    #[test]
    fn cpu_extension_never_hurts() {
        let p = Platform::agx();
        let pl = PowerLens::untrained(&p, PowerLensConfig::default());
        let g = zoo::resnet34();
        let base = pl.plan_oracle(&g).unwrap();
        let base_eval = evaluate_plan(&p, &g, &base.plan, 8, 48);
        let ext = plan_with_cpu(&pl, &g).unwrap();
        assert!(
            ext.eval.energy_efficiency >= base_eval.energy_efficiency * 0.999,
            "CPU sweep regressed: {} vs {}",
            ext.eval.energy_efficiency,
            base_eval.energy_efficiency
        );
        assert!(ext.cpu_level < p.cpu_levels());
        assert_eq!(ext.plan.cpu_level(), ext.cpu_level);
    }

    #[test]
    fn cpu_extension_picks_below_max_when_host_power_matters() {
        // On the AGX (high CPU idle + meaningful c_eff) the best CPU level
        // for a GPU-bound CNN sits below MAXN.
        let p = Platform::agx();
        let pl = PowerLens::untrained(&p, PowerLensConfig::default());
        let ext = plan_with_cpu(&pl, &zoo::resnet152()).unwrap();
        assert!(
            ext.cpu_level < p.cpu_table().max_level(),
            "expected a CPU downclock, got level {}",
            ext.cpu_level
        );
    }

    #[test]
    fn batch_co_optimization_prefers_larger_batches() {
        // Launch overhead amortizes with batch, so among {1, 8} the larger
        // batch should win EE on a launch-sensitive model.
        let p = Platform::tx2();
        let pl = PowerLens::untrained(&p, PowerLensConfig::default());
        let out = co_optimize_batch(&pl, &zoo::densenet201(), &[1, 8]).unwrap();
        assert_eq!(out.batch, 8);
        assert!(out.eval.energy_efficiency > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one candidate batch")]
    fn batch_co_optimization_rejects_empty() {
        let p = Platform::agx();
        let pl = PowerLens::untrained(&p, PowerLensConfig::default());
        let _ = co_optimize_batch(&pl, &zoo::alexnet(), &[]);
    }

    #[test]
    fn extensions_work_on_cloud_platform() {
        // §5 future work: PowerLens on a cloud server. The pipeline must
        // run unmodified on the V100-class platform.
        let p = Platform::cloud_v100();
        let pl = PowerLens::untrained(&p, PowerLensConfig::default());
        let g = zoo::resnet152();
        let ext = plan_with_cpu(&pl, &g).unwrap();
        assert!(ext.eval.energy_efficiency > 0.0);
        let max_plan = max_frequency_plan(&pl);
        let max_eval = evaluate_plan(&p, &g, &max_plan, 8, 48);
        assert!(
            ext.eval.energy_efficiency > max_eval.energy_efficiency,
            "cloud plan {} should beat max-frequency {}",
            ext.eval.energy_efficiency,
            max_eval.energy_efficiency
        );
    }
}
