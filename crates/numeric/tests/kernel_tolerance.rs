//! Tolerance-pinned equivalence tests: every lane kernel vs its scalar
//! reference, across remainder widths `1..LANES-1` and larger sizes.
//!
//! The lane kernels split reductions across [`kernels::LANES`] independent
//! accumulators; that re-association changes rounding, so equality is
//! pinned to an explicit relative tolerance instead of bit identity.
//! `scripts/check.sh` runs this suite as a dedicated gate — if a bound
//! here is loosened, that is a reviewable change, not silent drift.
//!
//! The matrix kernels (`gemm`, `gemm_tn_acc`) lane-chunk only the output
//! dimension, so they are additionally pinned bit-exact against plain
//! scalar loops here, remainder widths included.

use powerlens_numeric::kernels;
use proptest::prelude::*;

/// Relative bound for a re-associated sum of `len` products of inputs
/// bounded by `bound`: a forgiving multiple of `len · bound² · ε`, loose
/// enough for any association order yet ~1e6x tighter than what an actual
/// kernel bug (wrong element, dropped tail) produces.
fn reduction_tol(len: usize, bound: f64) -> f64 {
    1e-13 * (len.max(1) as f64) * bound * bound.max(1.0)
}

/// Vector pairs whose length sweeps every lane remainder: the strategy
/// draws `base` full chunks plus an explicit `rem` in `0..LANES`, so widths
/// `1..LANES-1` are always exercised rather than left to chance.
fn lane_vectors() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (0usize..6, 0usize..kernels::LANES).prop_flat_map(|(base, rem)| {
        let len = (base * kernels::LANES + rem).max(1);
        (
            proptest::collection::vec(-100.0f64..100.0, len),
            proptest::collection::vec(-100.0f64..100.0, len),
        )
    })
}

/// Row-major matrix operand triple (m, k, n) with every dimension crossing
/// lane boundaries.
fn gemm_operands() -> impl Strategy<Value = (usize, usize, usize, Vec<f64>, Vec<f64>)> {
    (1usize..=9, 1usize..=9, 1usize..=9).prop_flat_map(|(m, k, n)| {
        (
            Just(m),
            Just(k),
            Just(n),
            proptest::collection::vec(-10.0f64..10.0, m * k),
            proptest::collection::vec(-10.0f64..10.0, k * n),
        )
    })
}

/// Operands for the transposed accumulation: `A` is `k x m`, `B` is `k x n`.
fn tn_operands() -> impl Strategy<Value = (usize, usize, usize, Vec<f64>, Vec<f64>)> {
    (1usize..=9, 1usize..=9, 1usize..=9).prop_flat_map(|(k, m, n)| {
        (
            Just(k),
            Just(m),
            Just(n),
            proptest::collection::vec(-10.0f64..10.0, k * m),
            proptest::collection::vec(-10.0f64..10.0, k * n),
        )
    })
}

proptest! {
    #[test]
    fn dot_lanes_matches_scalar(v in lane_vectors()) {
        let (a, b) = v;
        let fast = kernels::dot_lanes(&a, &b);
        let want = kernels::dot_scalar(&a, &b);
        prop_assert!(
            (fast - want).abs() <= reduction_tol(a.len(), 100.0),
            "len {}: {} vs {}", a.len(), fast, want
        );
    }

    #[test]
    fn squared_distance_lanes_matches_scalar(v in lane_vectors()) {
        let (a, b) = v;
        let fast = kernels::squared_distance_lanes(&a, &b);
        let want = kernels::squared_distance_scalar(&a, &b);
        prop_assert!(fast >= 0.0);
        prop_assert!(
            (fast - want).abs() <= reduction_tol(a.len(), 200.0),
            "len {}: {} vs {}", a.len(), fast, want
        );
    }

    #[test]
    fn axpy_is_bit_identical_to_scalar_loop(v in lane_vectors(), a in -10.0f64..10.0) {
        let (x, y) = v;
        let mut fast = y.clone();
        kernels::axpy(&mut fast, a, &x);
        let mut want = y;
        for (o, &xv) in want.iter_mut().zip(&x) {
            *o += a * xv;
        }
        // Each element is touched exactly once; lane chunking cannot
        // change the arithmetic, so this pin is exact.
        prop_assert_eq!(fast, want);
    }

    #[test]
    fn gemm_nt_matches_scalar_dots_within_tolerance(ops in gemm_operands()) {
        let (m, k, n, a, bt_rows) = ops;
        // Reinterpret the k·n buffer as n x k (row-major B of gemm_nt).
        let b = &bt_rows[..];
        let mut fast = vec![0.0; m * n];
        kernels::gemm_nt(m, k, n, &a, b, &mut fast);
        for i in 0..m {
            for j in 0..n {
                let want = kernels::dot_scalar(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                prop_assert!(
                    (fast[i * n + j] - want).abs() <= reduction_tol(k, 10.0),
                    "({}, {}): {} vs {}", i, j, fast[i * n + j], want
                );
            }
        }
    }

    #[test]
    fn matvec_matches_scalar_dots_within_tolerance(ops in gemm_operands()) {
        let (m, k, _n, a, b) = ops;
        let x = &b[..k];
        let mut fast = vec![0.0; m];
        kernels::matvec(m, k, &a, x, &mut fast);
        for i in 0..m {
            let want = kernels::dot_scalar(&a[i * k..(i + 1) * k], x);
            prop_assert!(
                (fast[i] - want).abs() <= reduction_tol(k, 10.0),
                "row {}: {} vs {}", i, fast[i], want
            );
        }
    }

    #[test]
    fn gemm_stays_bit_identical_to_ascending_k(ops in gemm_operands()) {
        let (m, k, n, a, b) = ops;
        let mut fast = vec![0.0; m * n];
        kernels::gemm(m, k, n, &a, &b, &mut fast);
        let mut want = vec![0.0; m * n];
        for i in 0..m {
            for s in 0..k {
                let v = a[i * k + s];
                for j in 0..n {
                    want[i * n + j] += v * b[s * n + j];
                }
            }
        }
        // Lane chunking touches only the j dimension; per-element k order
        // is untouched, so the blocked≡naive pin stays exact.
        prop_assert_eq!(fast, want);
    }

    #[test]
    fn gemm_tn_acc_stays_bit_identical_to_sample_loop(ops in tn_operands()) {
        let (k, m, n, a, b_kn) = ops;
        let mut fast = vec![0.5; m * n];
        kernels::gemm_tn_acc(k, m, n, &a, &b_kn, &mut fast);
        let mut want = vec![0.5; m * n];
        for s in 0..k {
            for i in 0..m {
                let g = a[s * m + i];
                for j in 0..n {
                    want[i * n + j] += g * b_kn[s * n + j];
                }
            }
        }
        prop_assert_eq!(fast, want);
    }
}

/// Deterministic remainder-width sweep: one explicit case per width
/// `0..LANES`, so a failure names the width directly instead of shrinking.
#[test]
fn every_remainder_width_is_exercised() {
    for rem in 0..kernels::LANES {
        let len = 2 * kernels::LANES + rem;
        let a: Vec<f64> = (0..len).map(|i| 0.37 * i as f64 - 1.0).collect();
        let b: Vec<f64> = (0..len).map(|i| -0.11 * i as f64 + 2.0).collect();
        let d_fast = kernels::dot_lanes(&a, &b);
        let d_want = kernels::dot_scalar(&a, &b);
        assert!(
            (d_fast - d_want).abs() <= reduction_tol(len, 10.0),
            "dot remainder {rem}: {d_fast} vs {d_want}"
        );
        let s_fast = kernels::squared_distance_lanes(&a, &b);
        let s_want = kernels::squared_distance_scalar(&a, &b);
        assert!(
            (s_fast - s_want).abs() <= reduction_tol(len, 20.0),
            "sqdist remainder {rem}: {s_fast} vs {s_want}"
        );
    }
}
