//! Inference execution engine for PowerLens.
//!
//! Runs a [`powerlens_dnn::Graph`] on a [`powerlens_platform::Platform`]
//! layer by layer, under the control of a [`Controller`] — either a
//! *reactive governor* (BiM / FPG, which observe trailing telemetry and
//! adjust frequencies with lag) or a *proactive*
//! [`InstrumentationPlan`] (PowerLens, which presets a target frequency
//! before each power block). The engine charges the platform's DVFS
//! transition cost for every actual frequency change, records a
//! tegrastats-like telemetry stream, and reports latency / energy /
//! energy-efficiency ([`RunReport`]).
//!
//! # Example
//!
//! ```
//! use powerlens_sim::{Engine, StaticController};
//! use powerlens_platform::Platform;
//! use powerlens_dnn::zoo;
//!
//! let agx = Platform::agx();
//! let engine = Engine::new(&agx).with_batch(8);
//! let g = zoo::alexnet();
//! let max = agx.gpu_levels() - 1;
//! let mut ctl = StaticController::new(max, agx.cpu_levels() - 1);
//! let report = engine.run(&g, &mut ctl, 50);
//! assert!(report.energy_efficiency > 0.0);
//! ```

#![forbid(unsafe_code)]

mod controller;
mod degraded;
mod engine;
mod export;
mod taskflow;

pub use controller::{
    Controller, FreqRequest, InstrumentationPlan, InstrumentationPoint, PlanController,
    StaticController,
};
pub use degraded::{Degraded, DEFAULT_FAILURE_THRESHOLD, DEFAULT_STALE_WINDOW};
pub use engine::{Engine, RunReport};
pub use export::{write_summary_csv, write_trace_csv};
pub use taskflow::{run_taskflow, TaskFlowReport, TaskSpec};
